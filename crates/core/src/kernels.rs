//! The four GPU kernels of Section IV-D — `factor`, `factor_tree`,
//! `apply_qt_h`, `apply_qt_tree` — plus the out-of-place pre-transpose
//! preprocessing pass of strategy 4.
//!
//! Each kernel performs its real arithmetic on the matrix (thread blocks run
//! in parallel on the rayon pool, touching disjoint tiles per the
//! [`dense::ptr::MatPtr`] contract) and charges the analytic per-block cost
//! from the `*_block_cost` functions below. The model-only figure sweeps in
//! [`crate::model`] charge the *same* functions, so executed and modelled
//! timelines agree by construction (verified in the tests at the bottom).

use crate::block::{Tile, TreeGroup};
use crate::microkernels::{self as mk, ReductionStrategy};
use crate::tsqr::{TreeNode, WyTile};
use dense::scalar::Scalar;
use dense::MatPtr;
use gpu_sim::{BlockCost, BlockCtx, CostMeter, DeviceSpec, Kernel, LaunchConfig};
use parking_lot::Mutex;

/// Threads per block for every kernel (the paper's choice).
pub const THREADS: usize = 64;

// ---------------------------------------------------------------------------
// Analytic per-block costs (shared by execution and model-only paths).
// ---------------------------------------------------------------------------

/// Cost of one `factor` block: QR of a `rows x width` tile in fast memory.
pub fn factor_block_cost(
    spec: &DeviceSpec,
    rows: usize,
    width: usize,
    strategy: ReductionStrategy,
    elem_bytes: u64,
) -> BlockCost {
    let mut m = CostMeter::new(spec);
    mk::charge_block_load(&mut m, rows, width, strategy, elem_bytes);
    mk::charge_factor(&mut m, rows, width, THREADS, strategy, elem_bytes);
    mk::charge_block_store(&mut m, rows, width, strategy, elem_bytes);
    m.cost
}

/// Cost of one `factor_tree` block: gather `t` stacked `width x width`
/// R-triangles, factor the stack, scatter the U components back and write
/// the surviving R to the group leader.
pub fn factor_tree_block_cost(
    spec: &DeviceSpec,
    t: usize,
    width: usize,
    strategy: ReductionStrategy,
    elem_bytes: u64,
) -> BlockCost {
    let mut m = CostMeter::new(spec);
    let tri_words = (t * width * (width + 1) / 2) as u64;
    // Gathering distributed triangles is the "irregular, somewhat sparse"
    // access pattern of Section II-C; short 16-element column segments still
    // mostly coalesce on Fermi's 128-byte transactions.
    m.gmem(tri_words, elem_bytes, true);
    mk::charge_factor(&mut m, t * width, width, THREADS, strategy, elem_bytes);
    m.gmem(tri_words, elem_bytes, true); // U overwrites the stacked triangles
    m.gmem((width * (width + 1) / 2) as u64, elem_bytes, true); // leader's R
    m.cost
}

/// Cost of one `apply_qt_h` block: apply a tile's `width` Householder
/// vectors to a `rows x wc` tile of the trailing matrix.
pub fn apply_qt_h_block_cost(
    spec: &DeviceSpec,
    rows: usize,
    width: usize,
    wc: usize,
    strategy: ReductionStrategy,
    elem_bytes: u64,
) -> BlockCost {
    let mut m = CostMeter::new(spec);
    mk::charge_u_load(&mut m, rows, width, elem_bytes);
    mk::charge_block_load(&mut m, rows, wc, strategy, elem_bytes);
    mk::charge_apply_reflectors(&mut m, rows, width, wc, THREADS, strategy, elem_bytes);
    mk::charge_block_store(&mut m, rows, wc, strategy, elem_bytes);
    m.cost
}

/// Cost of one `apply_qt_tree` block: gather `t` distributed `width`-row
/// strips of the trailing matrix, apply the tree-level reflectors, scatter.
pub fn apply_qt_tree_block_cost(
    spec: &DeviceSpec,
    t: usize,
    width: usize,
    wc: usize,
    strategy: ReductionStrategy,
    elem_bytes: u64,
) -> BlockCost {
    let mut m = CostMeter::new(spec);
    let rows = t * width;
    // The stacked U has the triangular sparsity pattern; only its nonzeros
    // are read.
    m.gmem((t * width * (width + 1) / 2) as u64, elem_bytes, true);
    m.smem((t * width * (width + 1) / 2) as u64);
    mk::charge_block_load(&mut m, rows, wc, strategy, elem_bytes);
    mk::charge_apply_reflectors(&mut m, rows, width, wc, THREADS, strategy, elem_bytes);
    mk::charge_block_store(&mut m, rows, wc, strategy, elem_bytes);
    m.cost
}

/// Cost of one block of the pre-transpose preprocessing pass (strategy 4):
/// a shared-memory tiled transpose, read and write both coalesced.
pub fn pretranspose_block_cost(
    spec: &DeviceSpec,
    rows: usize,
    cols: usize,
    elem_bytes: u64,
) -> BlockCost {
    let mut m = CostMeter::new(spec);
    let words = (rows * cols) as u64;
    m.gmem(words, elem_bytes, true);
    m.smem(2 * words);
    m.sync();
    m.gmem(words, elem_bytes, true);
    m.cost
}

fn launch_smem_bytes<T: Scalar>(
    max_rows: usize,
    width: usize,
    wc: usize,
    strategy: ReductionStrategy,
    stage_v: bool,
) -> usize {
    let eb = std::mem::size_of::<T>();
    let mut bytes = mk::smem_bytes(max_rows, wc, THREADS, strategy, eb);
    if stage_v {
        bytes += max_rows * width * eb;
    }
    bytes
}

fn launch_regs(max_rows: usize, wc: usize, strategy: ReductionStrategy) -> usize {
    mk::regs_per_thread(max_rows, wc, THREADS, strategy).min(mk::FERMI_MAX_REGS_PER_THREAD)
}

/// The single-element corruption a simulated SDC applies: a bit-flip proxy
/// that is guaranteed to change the value (`0 -> 1`, `x -> 2x + 1` for
/// positive `x`) without producing a NaN/inf that the finiteness checks
/// would catch before the checksums get a chance to.
fn sdc_bump<T: Scalar>(v: T) -> T {
    v + T::ONE + v.abs()
}

/// Map an SDC payload to an element of the upper triangle of a `k`-wide
/// R block: column `j`, then a row at or above the diagonal.
fn sdc_triangle_elem(r: u64, k: usize) -> (usize, usize) {
    let j = (r / 16) as usize % k.max(1);
    let i = (r / 256) as usize % (j + 1);
    (i, j)
}

// ---------------------------------------------------------------------------
// factor
// ---------------------------------------------------------------------------

/// `factor` (Section IV-D.1): each block QR-factors one `rows x width` tile
/// of the panel in place, leaving R in the tile's upper triangle and the
/// Householder tails below the diagonal; the compact-WY factors (packed `V`,
/// triangular `T`, `tau`) go to the per-tile output slots. The WY build is
/// part of the same per-block cost as before — the charge model is shape-
/// derived and deliberately unchanged, so modelled figures stay stable
/// across the BLAS3 rewrite.
pub struct FactorKernel<'a, T: Scalar> {
    /// Global-memory handle of the matrix being factored.
    pub a: MatPtr<T>,
    /// Panel tiles (disjoint row ranges — the grid contract).
    pub tiles: &'a [Tile],
    /// Panel's first column.
    pub col0: usize,
    /// Panel width.
    pub width: usize,
    /// Tuning strategy (cost only; the math is identical).
    pub strategy: ReductionStrategy,
    /// Device description for cost derivation (borrowed: launch descriptors
    /// are transient, the spec outlives every launch).
    pub spec: &'a DeviceSpec,
    /// Output compact-WY slot per tile.
    pub wy: &'a [Mutex<Option<WyTile<T>>>],
}

impl<'a, T: Scalar> Kernel<T> for FactorKernel<'a, T> {
    fn name(&self) -> &'static str {
        "factor"
    }

    fn config(&self) -> LaunchConfig {
        let max_rows = self.tiles.iter().map(|t| t.rows).max().unwrap_or(0);
        LaunchConfig {
            blocks: self.tiles.len(),
            threads_per_block: THREADS,
            shared_mem_bytes: launch_smem_bytes::<T>(
                max_rows,
                self.width,
                self.width,
                self.strategy,
                false,
            ),
            regs_per_thread: launch_regs(max_rows, self.width, self.strategy),
        }
    }

    fn run_block(&self, b: usize, ctx: &mut BlockCtx<T>) {
        let tile = self.tiles[b];
        *self.wy[b].lock() = Some(crate::blockops::factor_tile(
            self.a, tile, self.col0, self.width,
        ));
        ctx.meter.charge(&factor_block_cost(
            self.spec,
            tile.rows,
            self.width,
            self.strategy,
            T::BYTES,
        ));
    }

    fn inject_sdc(&self, r: u64) -> bool {
        if self.tiles.is_empty() {
            return false;
        }
        let ti = (r / 2) as usize % self.tiles.len();
        let tile = self.tiles[ti];
        let k = self.width.min(tile.rows);
        if k == 0 {
            return false;
        }
        let (i, j) = sdc_triangle_elem(r, k);
        if r.is_multiple_of(2) {
            // Corrupt an R element of the tile in the factored matrix — the
            // output the `factor` checksum (column-norm invariance) guards.
            // Safety: injection runs after every block has retired, so no
            // block is concurrently writing the tile.
            unsafe {
                let v = self.a.get(tile.start + i, self.col0 + j);
                self.a.set(tile.start + i, self.col0 + j, sdc_bump(v));
            }
            true
        } else {
            // Corrupt the packed compact-WY `T` factor — consumed by every
            // later apply, caught by the orthogonality probe on `Q . 1`.
            let mut slot = self.wy[ti].lock();
            match slot.as_mut() {
                Some(wy) => {
                    let v = wy.t[(i, j)];
                    wy.t[(i, j)] = sdc_bump(v);
                    true
                }
                None => false,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// factor_tree
// ---------------------------------------------------------------------------

/// `factor_tree` (Section IV-D.2): each block gathers the stacked upper
/// triangular Rs of one tree group, QR-factors the stack in fast memory,
/// writes the surviving R back to the group leader's triangle, and emits
/// the stacked Householder representation as a [`TreeNode`].
pub struct FactorTreeKernel<'a, T: Scalar> {
    /// Global-memory handle of the matrix being factored.
    pub a: MatPtr<T>,
    /// Groups at this tree level (disjoint member sets).
    pub groups: &'a [TreeGroup],
    /// Panel's first column.
    pub col0: usize,
    /// Panel width.
    pub width: usize,
    /// Tuning strategy.
    pub strategy: ReductionStrategy,
    /// Device description (borrowed).
    pub spec: &'a DeviceSpec,
    /// Output slot per group.
    pub out: &'a [Mutex<Option<TreeNode<T>>>],
}

impl<'a, T: Scalar> Kernel<T> for FactorTreeKernel<'a, T> {
    fn name(&self) -> &'static str {
        "factor_tree"
    }

    fn config(&self) -> LaunchConfig {
        let max_t = self
            .groups
            .iter()
            .map(|g| g.members.len())
            .max()
            .unwrap_or(2);
        let rows = max_t * self.width;
        LaunchConfig {
            blocks: self.groups.len(),
            threads_per_block: THREADS,
            shared_mem_bytes: launch_smem_bytes::<T>(
                rows,
                self.width,
                self.width,
                self.strategy,
                false,
            ),
            regs_per_thread: launch_regs(rows, self.width, self.strategy),
        }
    }

    fn run_block(&self, g: usize, ctx: &mut BlockCtx<T>) {
        let grp = &self.groups[g];
        let t = grp.members.len();
        *self.out[g].lock() = Some(crate::blockops::factor_tree_group(
            self.a,
            &grp.members,
            self.col0,
            self.width,
        ));
        ctx.meter.charge(&factor_tree_block_cost(
            self.spec,
            t,
            self.width,
            self.strategy,
            T::BYTES,
        ));
    }

    fn inject_sdc(&self, r: u64) -> bool {
        if self.groups.is_empty() {
            return false;
        }
        let g = (r / 2) as usize % self.groups.len();
        let (i, j) = sdc_triangle_elem(r, self.width);
        if r.is_multiple_of(2) {
            // Corrupt the surviving R written back to the group leader's
            // triangle (caught by the factor-stage column-norm checksum).
            let leader = self.groups[g].members[0];
            unsafe {
                let v = self.a.get(leader + i, self.col0 + j);
                self.a.set(leader + i, self.col0 + j, sdc_bump(v));
            }
            true
        } else {
            // Corrupt the node's compact-WY `T` (caught by the probe).
            let mut slot = self.out[g].lock();
            match slot.as_mut() {
                Some(node) => {
                    let v = node.tmat[(i, j)];
                    node.tmat[(i, j)] = sdc_bump(v);
                    true
                }
                None => false,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// apply_qt_h
// ---------------------------------------------------------------------------

/// `apply_qt_h` (Section IV-D.3): apply the level-0 reflectors of each panel
/// tile horizontally across the trailing matrix, via the packed compact-WY
/// factors cached at factor time (three GEMMs per tile instead of `width`
/// rank-1 sweeps). The grid is `tiles x column-blocks`; block `(ti, cb)`
/// updates the `tiles[ti].rows x col_blocks[cb].1` tile of the target.
pub struct ApplyQtHKernel<'a, T: Scalar> {
    /// Target matrix being updated (tiles never overlap the panel columns).
    pub c: MatPtr<T>,
    /// Panel tiles.
    pub tiles: &'a [Tile],
    /// Panel width (number of reflectors per tile).
    pub width: usize,
    /// Per-tile compact-WY factors from the factor kernel.
    pub wy: &'a [WyTile<T>],
    /// `(first_col, width)` of each target column block.
    pub col_blocks: &'a [(usize, usize)],
    /// Apply `Q^T` (true) or `Q` (false).
    pub transpose: bool,
    /// Tuning strategy.
    pub strategy: ReductionStrategy,
    /// Device description (borrowed).
    pub spec: &'a DeviceSpec,
}

impl<'a, T: Scalar> Kernel<T> for ApplyQtHKernel<'a, T> {
    fn name(&self) -> &'static str {
        "apply_qt_h"
    }

    fn config(&self) -> LaunchConfig {
        let max_rows = self.tiles.iter().map(|t| t.rows).max().unwrap_or(0);
        let max_wc = self.col_blocks.iter().map(|c| c.1).max().unwrap_or(0);
        LaunchConfig {
            blocks: self.tiles.len() * self.col_blocks.len(),
            threads_per_block: THREADS,
            shared_mem_bytes: launch_smem_bytes::<T>(
                max_rows,
                self.width,
                max_wc,
                self.strategy,
                true,
            ),
            regs_per_thread: launch_regs(max_rows, max_wc, self.strategy),
        }
    }

    fn run_block(&self, b: usize, ctx: &mut BlockCtx<T>) {
        let ti = b % self.tiles.len();
        let cb = b / self.tiles.len();
        let tile = self.tiles[ti];
        let (c0, wc) = self.col_blocks[cb];
        crate::blockops::apply_tile_wy(&self.wy[ti], self.c, tile, c0, wc, self.transpose);
        ctx.meter.charge(&apply_qt_h_block_cost(
            self.spec,
            tile.rows,
            self.width.min(tile.rows),
            wc,
            self.strategy,
            T::BYTES,
        ));
    }

    fn inject_sdc(&self, r: u64) -> bool {
        let blocks = self.tiles.len() * self.col_blocks.len();
        if blocks == 0 {
            return false;
        }
        // Corrupt one element of one updated target block; the per-column
        // checksum prediction (u^T . C) localizes it to this update.
        let b = r as usize % blocks;
        let tile = self.tiles[b % self.tiles.len()];
        let (c0, wc) = self.col_blocks[b / self.tiles.len()];
        let i = (r / 64) as usize % tile.rows;
        let j = (r / 4096) as usize % wc;
        unsafe {
            let v = self.c.get(tile.start + i, c0 + j);
            self.c.set(tile.start + i, c0 + j, sdc_bump(v));
        }
        true
    }
}

// ---------------------------------------------------------------------------
// apply_qt_tree
// ---------------------------------------------------------------------------

/// `apply_qt_tree` (Section IV-D.4): apply one tree level's Householder
/// vectors to the trailing matrix. Block `(g, cb)` gathers the `width`-row
/// strips of the target at each of group `g`'s member offsets, applies the
/// stacked reflectors, and scatters the strips back — the "irregular and
/// somewhat sparse" access pattern the paper calls out.
pub struct ApplyQtTreeKernel<'a, T: Scalar> {
    /// Target matrix being updated.
    pub c: MatPtr<T>,
    /// Tree nodes at this level (factored stacks + taus).
    pub nodes: &'a [TreeNode<T>],
    /// Panel width.
    pub width: usize,
    /// `(first_col, width)` of each target column block.
    pub col_blocks: &'a [(usize, usize)],
    /// Apply `Q^T` (true) or `Q` (false).
    pub transpose: bool,
    /// Tuning strategy.
    pub strategy: ReductionStrategy,
    /// Device description (borrowed).
    pub spec: &'a DeviceSpec,
}

impl<'a, T: Scalar> Kernel<T> for ApplyQtTreeKernel<'a, T> {
    fn name(&self) -> &'static str {
        "apply_qt_tree"
    }

    fn config(&self) -> LaunchConfig {
        let max_t = self
            .nodes
            .iter()
            .map(|n| n.members.len())
            .max()
            .unwrap_or(2);
        let rows = max_t * self.width;
        let max_wc = self.col_blocks.iter().map(|c| c.1).max().unwrap_or(0);
        LaunchConfig {
            blocks: self.nodes.len() * self.col_blocks.len(),
            threads_per_block: THREADS,
            shared_mem_bytes: launch_smem_bytes::<T>(rows, self.width, max_wc, self.strategy, true),
            regs_per_thread: launch_regs(rows, max_wc, self.strategy),
        }
    }

    fn run_block(&self, b: usize, ctx: &mut BlockCtx<T>) {
        let g = b % self.nodes.len();
        let cb = b / self.nodes.len();
        let node = &self.nodes[g];
        let (c0, wc) = self.col_blocks[cb];
        crate::blockops::apply_tree_node(self.c, node, self.width, c0, wc, self.transpose);
        ctx.meter.charge(&apply_qt_tree_block_cost(
            self.spec,
            node.members.len(),
            self.width,
            wc,
            self.strategy,
            T::BYTES,
        ));
    }

    fn inject_sdc(&self, r: u64) -> bool {
        let blocks = self.nodes.len() * self.col_blocks.len();
        if blocks == 0 {
            return false;
        }
        // Corrupt one element of one updated strip of the target.
        let b = r as usize % blocks;
        let node = &self.nodes[b % self.nodes.len()];
        let (c0, wc) = self.col_blocks[b / self.nodes.len()];
        let member = node.members[(r / 64) as usize % node.members.len()];
        let i = (r / 512) as usize % self.width;
        let j = (r / 4096) as usize % wc;
        unsafe {
            let v = self.c.get(member + i, c0 + j);
            self.c.set(member + i, c0 + j, sdc_bump(v));
        }
        true
    }
}

// ---------------------------------------------------------------------------
// pretranspose
// ---------------------------------------------------------------------------

/// The out-of-place panel-transpose preprocessing pass of strategy 4
/// (Section IV-E.4). In the simulator the data stays column-major — the
/// transposed layout only changes coalescing, which the cost model already
/// credits — so this kernel is cost-only, but it is launched exactly where
/// the real pipeline would launch it and its traffic is charged in full.
pub struct PretransposeKernel<'a> {
    /// Number of tiles (grid size).
    pub blocks: usize,
    /// Tile rows.
    pub tile_rows: usize,
    /// Tile columns.
    pub tile_cols: usize,
    /// Device description (borrowed).
    pub spec: &'a DeviceSpec,
}

impl<'a, T: Scalar> Kernel<T> for PretransposeKernel<'a> {
    fn name(&self) -> &'static str {
        "pretranspose"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig {
            blocks: self.blocks,
            threads_per_block: THREADS,
            shared_mem_bytes: self.tile_rows * self.tile_cols * std::mem::size_of::<f32>(),
            regs_per_thread: 16,
        }
    }

    fn run_block(&self, _b: usize, ctx: &mut BlockCtx<T>) {
        ctx.meter.charge(&pretranspose_block_cost(
            self.spec,
            self.tile_rows,
            self.tile_cols,
            T::BYTES,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockSize;

    #[test]
    fn block_costs_have_flops_and_traffic() {
        let spec = DeviceSpec::c2050();
        let s = ReductionStrategy::RegisterSerialTransposed;
        let f = factor_block_cost(&spec, 128, 16, s, 4);
        assert!(f.flops > 0 && f.gmem_bytes > 0.0 && f.issue_cycles > 0.0);
        let t = factor_tree_block_cost(&spec, 8, 16, s, 4);
        assert!(
            t.flops >= f.flops,
            "an 8x16-stack factor matches a 128-row tile factor"
        );
        let t2 = factor_tree_block_cost(&spec, 2, 16, s, 4);
        assert!(t2.flops < t.flops, "smaller stacks cost less");
        let a = apply_qt_h_block_cost(&spec, 128, 16, 16, s, 4);
        assert!(a.flops > 0);
        let at = apply_qt_tree_block_cost(&spec, 4, 16, 16, s, 4);
        assert!(at.flops > 0);
        let p = pretranspose_block_cost(&spec, 32, 32, 4);
        assert_eq!(p.flops, 0, "transpose moves data, no flops");
        assert!(p.gmem_bytes >= 2.0 * 32.0 * 32.0 * 4.0);
    }

    #[test]
    fn apply_cost_is_compute_bound_for_best_strategy() {
        // The headline claim: CAQR's kernels are compute-bound.
        let spec = DeviceSpec::c2050();
        let c = apply_qt_h_block_cost(
            &spec,
            128,
            16,
            16,
            ReductionStrategy::RegisterSerialTransposed,
            4,
        );
        let issue_t = c.issue_cycles * spec.cycle_seconds() / spec.sms as f64;
        let dram_t = c.gmem_bytes / (spec.dram_bw_gbs * 1e9);
        assert!(
            issue_t > dram_t,
            "apply_qt_h must be compute-bound: {issue_t} vs {dram_t}"
        );
    }

    #[test]
    fn launch_configs_fit_the_device() {
        let spec = DeviceSpec::c2050();
        let bs = BlockSize::c2050_best();
        for strategy in ReductionStrategy::ALL {
            let cfg = LaunchConfig {
                blocks: 10,
                threads_per_block: THREADS,
                shared_mem_bytes: launch_smem_bytes::<f32>(bs.h + bs.w, bs.w, bs.w, strategy, true),
                regs_per_thread: launch_regs(bs.h + bs.w, bs.w, strategy),
            };
            cfg.validate(&spec)
                .unwrap_or_else(|e| panic!("{strategy}: {e}"));
        }
    }
}
