//! Error type for the CAQR drivers.

use gpu_sim::LaunchError;

/// Errors surfaced by the TSQR/CAQR drivers.
#[derive(Clone, Debug, PartialEq)]
pub enum CaqrError {
    /// A kernel launch violated device limits (shared memory, threads,
    /// registers) — the analogue of a CUDA launch failure.
    Launch(LaunchError),
    /// The requested factorization shape or block size is invalid.
    BadShape(String),
}

impl From<LaunchError> for CaqrError {
    fn from(e: LaunchError) -> Self {
        CaqrError::Launch(e)
    }
}

impl std::fmt::Display for CaqrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaqrError::Launch(e) => write!(f, "kernel launch failed: {e}"),
            CaqrError::BadShape(s) => write!(f, "bad shape: {s}"),
        }
    }
}

impl std::error::Error for CaqrError {}
