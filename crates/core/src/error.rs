//! Typed error taxonomy for the CAQR drivers.
//!
//! Everything a *caller* can trigger — bad shapes, non-finite input, a
//! numerical breakdown, a device fault that outlived its retries — comes
//! back as a [`CaqrError`] instead of a panic, so the RPCA solver and the
//! harness binaries can degrade gracefully. Panics that remain in the
//! library crates are programmer errors on invariants held by construction
//! (documented in DESIGN.md §9).

use dense::DenseError;
use gpu_sim::LaunchError;

/// Errors surfaced by the TSQR/CAQR drivers and the solvers above them.
#[derive(Clone, Debug, PartialEq)]
pub enum CaqrError {
    /// A kernel launch violated device limits (shared memory, threads,
    /// registers) — the analogue of a CUDA launch failure.
    Launch(LaunchError),
    /// The requested factorization shape or block size is invalid.
    BadShape(String),
    /// A simulated transient device fault persisted through every retry.
    Fault {
        /// Kernel that failed.
        kernel: &'static str,
        /// Launch ordinal (0-based admission order).
        launch_index: u64,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A NaN or infinity where finite data is required.
    NonFinite {
        /// Which input/stage the value was found in.
        context: &'static str,
        /// Row of the first offending entry.
        row: usize,
        /// Column of the first offending entry.
        col: usize,
    },
    /// A launch hung past the watchdog deadline on every retry attempt.
    Timeout {
        /// Kernel that hung.
        kernel: &'static str,
        /// Launch ordinal (0-based admission order).
        launch_index: u64,
        /// Watchdog deadline charged per hung attempt, microseconds.
        deadline_us: u64,
    },
    /// An ABFT checksum caught silently corrupted data (DESIGN.md §10):
    /// the named column's post-update sum (or the panel `R` column's norm
    /// invariant) disagrees with its prediction beyond rounding tolerance.
    ChecksumMismatch {
        /// Which verification stage detected it (`"factor"` / `"apply"`).
        stage: &'static str,
        /// Panel (0-based) whose verification failed.
        panel: usize,
        /// Global column index of the first mismatching checksum.
        col: usize,
    },
    /// The device a launch targeted has been lost wholesale (a simulated
    /// `FaultKind::DeviceLoss`): every launch on it fails until the device
    /// is reset. On a single device this is terminal — there is no retry a
    /// dead device can answer. Multi-device drivers (`distributed`) catch
    /// it and fail the lost device's work over to a survivor instead.
    DeviceLost {
        /// Kernel whose launch found the device gone.
        kernel: &'static str,
        /// Launch ordinal (0-based admission order).
        launch_index: u64,
    },
    /// Every tier of the recovery escalation ladder (task replay → panel
    /// replay → run retry) was exhausted without a clean run.
    Unrecoverable {
        /// The final straw: what kept failing after all replay budgets.
        context: String,
    },
    /// The computation degenerated numerically (e.g. a non-finite residual
    /// in an iterative solver, or a deadlocked stream schedule).
    Breakdown {
        /// What broke down.
        context: String,
    },
    /// A host-side task driving the computation panicked and the unwind
    /// was caught at an isolation boundary (a fused-batch member task, a
    /// service worker, an injected `FaultKind::HostPanic`). The panic is
    /// converted to a typed error so riders in the same batch — and the
    /// worker pool itself — survive.
    Panicked {
        /// Where the panic was caught, e.g. `"fused factor task"`.
        context: String,
    },
}

impl From<LaunchError> for CaqrError {
    fn from(e: LaunchError) -> Self {
        match e {
            LaunchError::DeviceFault {
                kernel,
                launch_index,
                attempts,
            } => CaqrError::Fault {
                kernel,
                launch_index,
                attempts,
            },
            LaunchError::Timeout {
                kernel,
                launch_index,
                deadline_us,
            } => CaqrError::Timeout {
                kernel,
                launch_index,
                deadline_us,
            },
            LaunchError::DeviceLost {
                kernel,
                launch_index,
            } => CaqrError::DeviceLost {
                kernel,
                launch_index,
            },
            other => CaqrError::Launch(other),
        }
    }
}

impl From<DenseError> for CaqrError {
    fn from(e: DenseError) -> Self {
        match e {
            DenseError::ShapeMismatch {
                context,
                expected,
                got,
            } => CaqrError::BadShape(format!("{context}: expected {expected}, got {got}")),
            DenseError::NonFinite { context, row, col } => {
                CaqrError::NonFinite { context, row, col }
            }
        }
    }
}

impl std::fmt::Display for CaqrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaqrError::Launch(e) => write!(f, "kernel launch failed: {e}"),
            CaqrError::BadShape(s) => write!(f, "bad shape: {s}"),
            CaqrError::Fault {
                kernel,
                launch_index,
                attempts,
            } => write!(
                f,
                "device fault: kernel `{kernel}` (launch #{launch_index}) failed {attempts} attempts"
            ),
            CaqrError::NonFinite { context, row, col } => {
                write!(f, "non-finite value in {context} at ({row}, {col})")
            }
            CaqrError::Timeout {
                kernel,
                launch_index,
                deadline_us,
            } => write!(
                f,
                "watchdog timeout: kernel `{kernel}` (launch #{launch_index}) hung past the {deadline_us} us deadline on every retry"
            ),
            CaqrError::ChecksumMismatch { stage, panel, col } => write!(
                f,
                "checksum mismatch: {stage} verification of panel {panel} failed at column {col} (silent data corruption detected)"
            ),
            CaqrError::DeviceLost {
                kernel,
                launch_index,
            } => write!(
                f,
                "device lost: kernel `{kernel}` (launch #{launch_index}) found its device gone"
            ),
            CaqrError::Unrecoverable { context } => {
                write!(f, "unrecoverable after all replay tiers: {context}")
            }
            CaqrError::Breakdown { context } => write!(f, "numerical breakdown: {context}"),
            CaqrError::Panicked { context } => {
                write!(f, "task panicked: {context} (unwind caught at isolation boundary)")
            }
        }
    }
}

impl std::error::Error for CaqrError {}

/// `a * b` as an element count, surfacing overflow on adversarially large
/// dimensions as a typed [`CaqrError::BadShape`] instead of silently
/// wrapping (release builds don't trap) or panicking (debug builds do).
pub fn checked_elems(a: usize, b: usize, what: &str) -> Result<usize, CaqrError> {
    a.checked_mul(b)
        .ok_or_else(|| CaqrError::BadShape(format!("{what} overflows: {a} * {b}")))
}

/// `elems * bytes_per_elem` as a `u64` byte count, with the same overflow
/// guarantee as [`checked_elems`] — used by the transfer/cost accounting
/// that feeds byte counts to the interconnect and PCIe models.
pub fn checked_bytes(elems: usize, bytes_per_elem: u64, what: &str) -> Result<u64, CaqrError> {
    (elems as u64).checked_mul(bytes_per_elem).ok_or_else(|| {
        CaqrError::BadShape(format!(
            "{what} byte size overflows: {elems} * {bytes_per_elem} B"
        ))
    })
}

#[cfg(test)]
mod size_tests {
    use super::*;

    #[test]
    fn checked_size_helpers_accept_sane_and_reject_huge() {
        assert_eq!(checked_elems(1 << 20, 192, "elems").unwrap(), 192 << 20);
        assert_eq!(checked_bytes(1 << 20, 8, "bytes").unwrap(), 8 << 20);
        let e = checked_elems(usize::MAX, 2, "matrix element count");
        assert!(matches!(e, Err(CaqrError::BadShape(_))), "{e:?}");
        let e = checked_bytes(usize::MAX, 8, "triangle bytes");
        assert!(matches!(e, Err(CaqrError::BadShape(_))), "{e:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_fault_converts_to_typed_fault() {
        let e: CaqrError = LaunchError::DeviceFault {
            kernel: "factor",
            launch_index: 7,
            attempts: 3,
        }
        .into();
        assert_eq!(
            e,
            CaqrError::Fault {
                kernel: "factor",
                launch_index: 7,
                attempts: 3
            }
        );
        let s = e.to_string();
        assert!(
            s.contains("factor") && s.contains('7') && s.contains('3'),
            "{s}"
        );
    }

    #[test]
    fn other_launch_errors_stay_launch() {
        let e: CaqrError = LaunchError::EmptyGrid.into();
        assert!(matches!(e, CaqrError::Launch(LaunchError::EmptyGrid)));
    }

    #[test]
    fn timeout_converts_to_typed_timeout() {
        let e: CaqrError = LaunchError::Timeout {
            kernel: "apply_qt_h",
            launch_index: 12,
            deadline_us: 10_000,
        }
        .into();
        assert_eq!(
            e,
            CaqrError::Timeout {
                kernel: "apply_qt_h",
                launch_index: 12,
                deadline_us: 10_000
            }
        );
        let s = e.to_string();
        assert!(s.contains("apply_qt_h") && s.contains("10000"), "{s}");
    }

    #[test]
    fn device_lost_converts_to_typed_loss() {
        let e: CaqrError = LaunchError::DeviceLost {
            kernel: "factor_tree",
            launch_index: 9,
        }
        .into();
        assert_eq!(
            e,
            CaqrError::DeviceLost {
                kernel: "factor_tree",
                launch_index: 9
            }
        );
        let s = e.to_string();
        assert!(s.contains("factor_tree") && s.contains('9'), "{s}");
    }

    #[test]
    fn recovery_errors_render_usefully() {
        let c = CaqrError::ChecksumMismatch {
            stage: "apply",
            panel: 2,
            col: 37,
        };
        let s = c.to_string();
        assert!(
            s.contains("apply") && s.contains('2') && s.contains("37"),
            "{s}"
        );
        let u = CaqrError::Unrecoverable {
            context: "panel 1 kept hanging".into(),
        };
        assert!(u.to_string().contains("panel 1 kept hanging"));
    }

    #[test]
    fn panicked_renders_its_context() {
        let p = CaqrError::Panicked {
            context: "fused factor task".into(),
        };
        let s = p.to_string();
        assert!(
            s.contains("panicked") && s.contains("fused factor task"),
            "{s}"
        );
    }

    #[test]
    fn dense_errors_map_into_the_taxonomy() {
        let e: CaqrError = DenseError::NonFinite {
            context: "input",
            row: 2,
            col: 5,
        }
        .into();
        assert!(matches!(
            e,
            CaqrError::NonFinite {
                context: "input",
                row: 2,
                col: 5
            }
        ));
        let e: CaqrError = DenseError::ShapeMismatch {
            context: "larf_left",
            expected: 4,
            got: 3,
        }
        .into();
        assert!(matches!(e, CaqrError::BadShape(_)));
    }
}
