//! Service-tier resilience policy (DESIGN.md §15): the planned-fault
//! plumbing that threads gpu-sim fault injection through the host batch
//! engine, the solo §10-ladder fallback for carved-out batch members, the
//! bounded retry budget, the overload circuit-breaker policy, and the
//! per-tenant admission quotas.

use crate::backend::{CaqrBackend, CpuBackend, DagGeometry, DriveConfig};
use crate::block::BlockSize;
use crate::error::CaqrError;
use crate::microkernels::ReductionStrategy;
use crate::multicore::{CpuCaqr, CpuCaqrOptions, CpuPanel};
use crate::recovery::{drive_resilient, is_transient, RecoveryPolicy, RecoveryReport};
use crate::tsqr::PanelFactor;
use dense::matrix::Matrix;
use dense::scalar::Scalar;
use dense::MatPtr;
use gpu_sim::{FaultKind, FaultPlan};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// One fault the service plans to inject against one job: drawn from a
/// [`ServiceFaultPlan`] at dispatch, steered into the batch engine
/// ([`super::factor_many_resilient`]) or the solo ladder
/// ([`run_solo_resilient`]) by the `payload` bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedFault {
    /// What goes wrong.
    pub kind: FaultKind,
    /// The launch ordinal the fault is attributed to in typed errors
    /// (the job's admission sequence number, service-side).
    pub ordinal: u64,
    /// Deterministic steering bits (which panel / stage / element the
    /// fault hits), from [`gpu_sim::fault::sdc_payload`].
    pub payload: u64,
}

/// A seeded fault campaign against the service: which jobs fault (keyed by
/// admission sequence number through a [`FaultPlan`]), plus an optional
/// worker-killing cadence for supervision testing.
#[derive(Clone, Debug)]
pub struct ServiceFaultPlan {
    /// Per-job fault draw, keyed by `(job seq, attempt)` exactly like the
    /// device keys its plan by `(launch ordinal, attempt)` — so retries of
    /// a faulted job re-draw, and a seeded plan is reproducible end to end.
    pub plan: FaultPlan,
    /// Kill the serving worker (panic its thread) on every N-th dispatched
    /// batch, exercising the supervisor. `None` disables.
    pub worker_panic_every: Option<u64>,
}

impl ServiceFaultPlan {
    /// A fault campaign over `plan`, with worker kills disabled.
    pub fn new(plan: FaultPlan) -> ServiceFaultPlan {
        ServiceFaultPlan {
            plan,
            worker_panic_every: None,
        }
    }

    /// Kill the serving worker on every `every`-th batch.
    pub fn worker_panic_every(mut self, every: u64) -> ServiceFaultPlan {
        self.worker_panic_every = Some(every.max(1));
        self
    }

    /// Draw the planned fault for job `seq` on retry `attempt` (0 = the
    /// batch attempt). Deterministic in `(seed, seq, attempt)`.
    pub fn draw(&self, seq: u64, attempt: u32) -> Option<PlannedFault> {
        self.plan.fault_kind(seq, attempt).map(|kind| PlannedFault {
            kind,
            ordinal: seq,
            payload: gpu_sim::fault::sdc_payload(seq, attempt),
        })
    }
}

/// Bounded solo-retry budget with exponential backoff: how many times the
/// service re-runs a job that failed retryably in a batch, and how long it
/// waits between attempts.
#[derive(Clone, Copy, Debug)]
pub struct RetryBudget {
    /// Solo retries per job after the batch attempt (0 disables retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent attempt.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryBudget {
    fn default() -> Self {
        RetryBudget {
            max_retries: 2,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryBudget {
    /// Backoff before retry `attempt` (1-based): `backoff * 2^(attempt-1)`,
    /// capped at `max_backoff`.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(20);
        self.backoff
            .saturating_mul(1u32 << shift)
            .min(self.max_backoff)
    }
}

/// The overload circuit breaker's thresholds (DESIGN.md §15). The breaker
/// **opens** when queue depth reaches `open_depth` or the deadline-miss
/// rate over the last `miss_window` deadline-carrying completions reaches
/// `open_miss_rate`; while open, `Batch`-priority jobs are shed at
/// dispatch with [`super::ServiceError::Overloaded`]. It **closes** only
/// once depth falls to `close_depth` — the hysteresis gap keeps it from
/// flapping at the threshold.
#[derive(Clone, Copy, Debug)]
pub struct ShedPolicy {
    /// Open when queue depth at dispatch reaches this.
    pub open_depth: usize,
    /// Close only when depth has drained to this (must be < `open_depth`).
    pub close_depth: usize,
    /// Sliding window of deadline-carrying completions the miss rate is
    /// measured over (0 disables the miss-rate trigger).
    pub miss_window: usize,
    /// Open when the windowed miss rate reaches this fraction. Values
    /// above 1.0 disable the trigger.
    pub open_miss_rate: f64,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        ShedPolicy::disabled()
    }
}

impl ShedPolicy {
    /// No shedding beyond expired deadlines (the pre-resilience behaviour).
    pub fn disabled() -> ShedPolicy {
        ShedPolicy {
            open_depth: usize::MAX,
            close_depth: 0,
            miss_window: 0,
            open_miss_rate: 1.1,
        }
    }

    /// A sane policy for a queue of `capacity`: open at 3/4 full or a 50%
    /// miss rate over 32 completions, close at 1/4 full.
    pub fn recommended(capacity: usize) -> ShedPolicy {
        ShedPolicy {
            open_depth: (capacity * 3 / 4).max(2),
            close_depth: capacity / 4,
            miss_window: 32,
            open_miss_rate: 0.5,
        }
    }

    /// Whether any trigger is live.
    pub fn enabled(&self) -> bool {
        self.open_depth != usize::MAX || self.open_miss_rate <= 1.0
    }
}

/// Per-tenant admission quota: how many jobs one tenant may have queued at
/// once. Violations are rejected immediately with
/// [`super::SubmitError::QuotaExceeded`] — never blocked — so a greedy
/// tenant cannot camp on the backpressure path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TenantQuota {
    /// No per-tenant cap (the queue bound still applies).
    #[default]
    Unlimited,
    /// A flat per-tenant cap on queued jobs.
    MaxQueued(usize),
    /// Fair share: each tenant may queue `capacity / active_tenants`
    /// (tenants with jobs queued, the submitter included), but never less
    /// than `min`. The cap tightens as more tenants contend.
    FairShare {
        /// Floor below which the fair share never shrinks.
        min: usize,
    },
}

/// The service's resilience configuration. Everything defaults to off: a
/// default-configured service runs the plain fused engine with no
/// verification overhead and no retries.
#[derive(Clone, Debug, Default)]
pub struct ResilienceConfig {
    /// Run every fused batch through the ABFT-verified engine even without
    /// planned faults (detection always on, ~the checksum overhead of §9).
    pub verify_batches: bool,
    /// Inject a seeded fault campaign (tests, chaos soak).
    pub faults: Option<ServiceFaultPlan>,
    /// Solo-retry budget for jobs that fail retryably in a batch.
    pub retry: RetryBudget,
    /// §10 escalation-ladder budgets for the solo resilient path.
    pub recovery: RecoveryPolicy,
}

impl ResilienceConfig {
    /// Whether dispatch must route through the resilient engine at all.
    pub fn active(&self) -> bool {
        self.verify_batches || self.faults.is_some()
    }
}

/// Should the service spend solo-retry budget on this error? Transient
/// faults (launch faults, hangs, checksum mismatches) retry, as do caught
/// panics (the worker that died took no state with it — the job's input is
/// intact in the spec) and `Unrecoverable` (the §10 ladder's budgets may
/// simply have been exhausted by an unlucky streak; a fresh solo run
/// re-draws). Deterministic failures — bad shapes, non-finite input,
/// breakdowns, a lost device — fail fast.
pub fn service_retryable(e: &CaqrError) -> bool {
    is_transient(e)
        || matches!(
            e,
            CaqrError::Panicked { .. } | CaqrError::Unrecoverable { .. }
        )
}

/// A [`CpuBackend`] that injects one planned fault at a chosen task
/// ordinal, then behaves honestly forever after — the host-path analogue
/// of `gpu_sim::Device::admit` drawing from its [`FaultPlan`]. Single
/// fire: the §10 ladder's replay of the faulted task (or of the whole run)
/// sees clean execution, so recovery converges and stays bit-identical.
struct InjectingCpuBackend {
    inner: CpuBackend,
    fault: Cell<Option<PlannedFault>>,
    fire_at: u64,
    calls: Cell<u64>,
}

impl InjectingCpuBackend {
    fn new(fault: Option<PlannedFault>, fire_at: u64) -> InjectingCpuBackend {
        InjectingCpuBackend {
            inner: CpuBackend,
            fault: Cell::new(fault),
            fire_at,
            calls: Cell::new(0),
        }
    }

    /// Take the armed fault iff this call is the firing ordinal.
    fn draw(&self) -> Option<PlannedFault> {
        let ord = self.calls.get();
        self.calls.set(ord + 1);
        if ord == self.fire_at {
            self.fault.take()
        } else {
            None
        }
    }
}

impl<T: Scalar> CaqrBackend<T> for InjectingCpuBackend {
    type Token = ();

    fn slots(&self) -> usize {
        CaqrBackend::<T>::slots(&self.inner)
    }

    fn check_finite(
        &self,
        a: &Matrix<T>,
        bs: BlockSize,
        context: &'static str,
    ) -> Result<usize, CaqrError> {
        self.inner.check_finite(a, bs, context)
    }

    fn pretranspose(&self, m: usize, n: usize, bs: BlockSize) -> Result<usize, CaqrError> {
        CaqrBackend::<T>::pretranspose(&self.inner, m, n, bs)
    }

    fn factor_panel(
        &self,
        slot: usize,
        a: &mut Matrix<T>,
        row0: usize,
        col0: usize,
        width: usize,
        cfg: &DriveConfig,
    ) -> Result<PanelFactor<T>, CaqrError> {
        match self.draw() {
            Some(f) => match f.kind {
                FaultKind::LaunchFail => Err(CaqrError::Fault {
                    kernel: "factor",
                    launch_index: f.ordinal,
                    attempts: 1,
                }),
                FaultKind::Hang => Err(CaqrError::Timeout {
                    kernel: "factor",
                    launch_index: f.ordinal,
                    deadline_us: 1_000,
                }),
                FaultKind::DeviceLoss => Err(CaqrError::DeviceLost {
                    kernel: "factor",
                    launch_index: f.ordinal,
                }),
                FaultKind::HostPanic => {
                    panic!("injected host panic: solo factor task")
                }
                FaultKind::Sdc => {
                    // Factor honestly, then flip an R-diagonal element —
                    // inside the column-norm checksum's coverage, so the
                    // ladder detects and replays from the panel snapshot.
                    let pf = self.inner.factor_panel(slot, a, row0, col0, width, cfg)?;
                    let r = (f.payload % width as u64) as usize;
                    let x = a[(col0 + r, col0 + r)];
                    a[(col0 + r, col0 + r)] = x + x + T::ONE;
                    Ok(pf)
                }
            },
            None => self.inner.factor_panel(slot, a, row0, col0, width, cfg),
        }
    }

    fn apply_panel(
        &self,
        slot: usize,
        c: MatPtr<T>,
        pf: &PanelFactor<T>,
        cols: &[(usize, usize)],
        transpose: bool,
    ) -> Result<(), CaqrError> {
        match self.draw() {
            Some(f) => match f.kind {
                FaultKind::LaunchFail => Err(CaqrError::Fault {
                    kernel: "apply",
                    launch_index: f.ordinal,
                    attempts: 1,
                }),
                FaultKind::Hang => Err(CaqrError::Timeout {
                    kernel: "apply",
                    launch_index: f.ordinal,
                    deadline_us: 1_000,
                }),
                FaultKind::DeviceLoss => Err(CaqrError::DeviceLost {
                    kernel: "apply",
                    launch_index: f.ordinal,
                }),
                FaultKind::HostPanic => {
                    panic!("injected host panic: solo apply task")
                }
                FaultKind::Sdc => {
                    // Apply honestly, then flip a trailing-column element —
                    // covered by the predicted column-sum checksum.
                    self.inner.apply_panel(slot, c, pf, cols, transpose)?;
                    unsafe {
                        let (row, col) = (pf.tiles[0].start, cols[0].0);
                        let x = c.get(row, col);
                        c.set(row, col, x + x + T::ONE);
                    }
                    Ok(())
                }
            },
            None => self.inner.apply_panel(slot, c, pf, cols, transpose),
        }
    }

    fn record(&self, slot: usize) -> Self::Token {
        CaqrBackend::<T>::record(&self.inner, slot)
    }

    fn wait(&self, slot: usize, token: Self::Token) {
        CaqrBackend::<T>::wait(&self.inner, slot, token)
    }

    fn sync(&self) -> Result<(), CaqrError> {
        CaqrBackend::<T>::sync(&self.inner)
    }

    fn q_ones_probe(&self, m: usize, pf: &PanelFactor<T>) -> Vec<T> {
        self.inner.q_ones_probe(m, pf)
    }
}

/// Factor one job on the host through the §10 escalation ladder
/// ([`drive_resilient`] over a [`CpuBackend`]), optionally with one
/// injected [`PlannedFault`]. This is the service's solo fallback for a
/// batch member carved out of a fused group, and its chaos-mode solo path.
///
/// Transient injections (launch fault, hang, SDC) are recovered *inside*
/// this call by snapshot/replay, so the returned factorization is
/// bit-identical to a fault-free [`caqr_cpu`](crate::multicore::caqr_cpu)
/// run. A host panic is caught at this boundary and surfaced as
/// [`CaqrError::Panicked`]; device loss stays typed and terminal.
pub fn run_solo_resilient<T: Scalar>(
    a: Matrix<T>,
    opts: CpuCaqrOptions,
    fault: Option<PlannedFault>,
    policy: &RecoveryPolicy,
) -> Result<(CpuCaqr<T>, RecoveryReport), CaqrError> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(CaqrError::BadShape(format!("empty matrix {m}x{n}")));
    }
    let bs = BlockSize {
        h: opts.tile_rows,
        w: opts.panel_width,
    };
    bs.validate().map_err(CaqrError::BadShape)?;
    let cfg = DriveConfig {
        bs,
        strategy: ReductionStrategy::RegisterSerialTransposed,
        tree: opts.tree,
        check_finite: true,
        verify_checksums: false,
        health_context: "caqr_cpu input",
    };
    // Steer the fault to a uniformly chosen task of the fault-free
    // schedule: per panel one factor_panel call, plus one apply_panel call
    // when the panel has trailing columns.
    let total: u64 = DagGeometry::panel_steps(m, n, bs.w)
        .iter()
        .map(|s| if s.c + s.width < n { 2 } else { 1 })
        .sum();
    let fire_at = fault.map_or(u64::MAX, |f| f.payload % total.max(1));
    let backend = InjectingCpuBackend::new(fault, fire_at);
    match catch_unwind(AssertUnwindSafe(|| {
        drive_resilient(&backend, a, &cfg, policy)
    })) {
        Ok(Ok((out, report))) => Ok((
            CpuCaqr {
                a: out.a,
                panels: out.panels.into_iter().map(CpuPanel::from).collect(),
                opts,
            },
            report,
        )),
        Ok(Err(e)) => Err(e),
        Err(_) => Err(CaqrError::Panicked {
            context: "resilient solo factorization".to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::TreeShape;
    use crate::multicore::caqr_cpu;

    fn opts() -> CpuCaqrOptions {
        CpuCaqrOptions {
            tile_rows: 48,
            panel_width: 16,
            tree: TreeShape::DeviceArity,
            verify_checksums: false,
        }
    }

    #[test]
    fn solo_ladder_recovers_transient_injections_bitwise() {
        let a = dense::generate::uniform::<f64>(300, 32, 5);
        let want = caqr_cpu(a.clone(), opts()).unwrap();
        for (kind, payload) in [
            (FaultKind::LaunchFail, 0u64),
            (FaultKind::Hang, 1),
            (FaultKind::Sdc, 2),
            (FaultKind::Sdc, 3),
        ] {
            let fault = Some(PlannedFault {
                kind,
                ordinal: 9,
                payload,
            });
            let (got, report) =
                run_solo_resilient(a.clone(), opts(), fault, &RecoveryPolicy::default())
                    .unwrap_or_else(|e| panic!("{kind:?}/{payload} must recover, got {e}"));
            assert_eq!(got.a, want.a, "{kind:?}/{payload} diverged after recovery");
            assert!(
                report.task_replays + report.panel_replays + report.run_retries > 0,
                "{kind:?}/{payload} recovery must have replayed something"
            );
        }
    }

    #[test]
    fn solo_host_panic_is_caught_as_a_typed_error() {
        let a = dense::generate::uniform::<f64>(200, 16, 6);
        let fault = Some(PlannedFault {
            kind: FaultKind::HostPanic,
            ordinal: 1,
            payload: 0,
        });
        match run_solo_resilient(a, opts(), fault, &RecoveryPolicy::default()) {
            Err(CaqrError::Panicked { context }) => {
                assert!(context.contains("solo"), "{context}")
            }
            other => panic!("expected Panicked, got {:?}", other.err()),
        }
    }

    #[test]
    fn solo_device_loss_stays_terminal() {
        let a = dense::generate::uniform::<f64>(200, 16, 7);
        let fault = Some(PlannedFault {
            kind: FaultKind::DeviceLoss,
            ordinal: 2,
            payload: 0,
        });
        match run_solo_resilient(a, opts(), fault, &RecoveryPolicy::default()) {
            Err(CaqrError::DeviceLost { .. }) => {}
            other => panic!("expected DeviceLost, got {:?}", other.err()),
        }
    }

    #[test]
    fn no_fault_means_plain_bitwise_output() {
        let a = dense::generate::uniform::<f64>(256, 16, 8);
        let want = caqr_cpu(a.clone(), opts()).unwrap();
        let (got, report) =
            run_solo_resilient(a, opts(), None, &RecoveryPolicy::default()).unwrap();
        assert_eq!(got.a, want.a);
        assert_eq!(report.task_replays, 0);
        assert_eq!(report.checksum_failures, 0);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let b = RetryBudget {
            max_retries: 5,
            backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(9),
        };
        assert_eq!(b.backoff_for(1), Duration::from_millis(2));
        assert_eq!(b.backoff_for(2), Duration::from_millis(4));
        assert_eq!(b.backoff_for(3), Duration::from_millis(8));
        assert_eq!(b.backoff_for(4), Duration::from_millis(9));
        assert_eq!(b.backoff_for(30), Duration::from_millis(9));
    }

    #[test]
    fn shed_policy_enablement() {
        assert!(!ShedPolicy::disabled().enabled());
        assert!(ShedPolicy::recommended(64).enabled());
        let depth_only = ShedPolicy {
            open_depth: 10,
            close_depth: 2,
            miss_window: 0,
            open_miss_rate: 1.1,
        };
        assert!(depth_only.enabled());
    }

    #[test]
    fn seeded_service_plan_draws_reproducibly() {
        let plan = ServiceFaultPlan::new(FaultPlan::seeded_service_mix(42, 0.2, 0.2, 0.1, 0.1));
        let a: Vec<_> = (0..200).map(|s| plan.draw(s, 0)).collect();
        let b: Vec<_> = (0..200).map(|s| plan.draw(s, 0)).collect();
        assert_eq!(a, b, "draws must be deterministic in (seed, seq, attempt)");
        assert!(
            a.iter().flatten().count() > 0,
            "a 60% composite rate over 200 jobs must fault someone"
        );
    }
}
