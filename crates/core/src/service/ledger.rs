//! The per-tenant accounting ledger: every charge lands on a tenant's row
//! and the global row in the same critical section, so the split-accounting
//! invariant — per-tenant sums equal the global row — holds at every
//! instant, including mid-chaos (worker deaths, shed storms, retries).

use std::collections::BTreeMap;

/// Counters charged to one tenant (and, summed, to the global row of the
/// [`ServiceLedger`]). Every charge is applied to the tenant's row and the
/// global row in the same critical section, so the reconciliation invariant
/// — per-tenant sums equal the global row — holds at every instant.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TenantCounters {
    /// Jobs accepted into the queue.
    pub jobs_submitted: u64,
    /// Jobs factored successfully.
    pub jobs_completed: u64,
    /// Jobs that surfaced a [`CaqrError`](crate::error::CaqrError).
    pub jobs_failed: u64,
    /// Jobs shed at dispatch because their deadline had already expired.
    pub jobs_shed: u64,
    /// Jobs shed at dispatch by the open overload circuit breaker
    /// ([`super::ShedPolicy`]).
    pub jobs_shed_overload: u64,
    /// Jobs whose serving worker died before delivering a result; their
    /// tickets were resolved with [`super::ServiceError::WorkerLost`] by
    /// the supervisor.
    pub jobs_lost: u64,
    /// Jobs still queued when [`super::Service::shutdown_now`] drained the
    /// queue; resolved with [`super::ServiceError::ShuttingDown`].
    pub jobs_aborted: u64,
    /// Jobs served past their deadline (completed, but late).
    pub deadline_misses: u64,
    /// Panels factored on behalf of the tenant.
    pub panels: u64,
    /// Per-job logical launch chains, as the synchronous driver counts
    /// them. Fault-free work only: launches spent inside the solo-retry
    /// path land in [`retry_launches`](Self::retry_launches) instead, so
    /// the fault-free cost of a tenant's traffic stays legible.
    pub launches: u64,
    /// Jobs that ran inside a fused group.
    pub fused_jobs: u64,
    /// Jobs that ran standalone.
    pub solo_jobs: u64,
    /// Jobs that needed at least one solo retry after a batch-path fault.
    pub retry_jobs: u64,
    /// Total solo retry attempts across the tenant's jobs.
    pub retry_attempts: u64,
    /// Logical launches spent inside successful solo retries — the extra
    /// work faults cost this tenant, kept out of `launches`.
    pub retry_launches: u64,
    /// Useful flops factored (`geqrf` count of each completed job).
    pub flops: f64,
    /// Seconds jobs spent queued before dispatch.
    pub queue_seconds: f64,
    /// Seconds of batch execution the jobs participated in.
    pub service_seconds: f64,
    /// Seconds spent in the solo-retry loop (backoff included).
    pub retry_seconds: f64,
}

impl TenantCounters {
    fn add(&mut self, o: &TenantCounters) {
        self.jobs_submitted += o.jobs_submitted;
        self.jobs_completed += o.jobs_completed;
        self.jobs_failed += o.jobs_failed;
        self.jobs_shed += o.jobs_shed;
        self.jobs_shed_overload += o.jobs_shed_overload;
        self.jobs_lost += o.jobs_lost;
        self.jobs_aborted += o.jobs_aborted;
        self.deadline_misses += o.deadline_misses;
        self.panels += o.panels;
        self.launches += o.launches;
        self.fused_jobs += o.fused_jobs;
        self.solo_jobs += o.solo_jobs;
        self.retry_jobs += o.retry_jobs;
        self.retry_attempts += o.retry_attempts;
        self.retry_launches += o.retry_launches;
        self.flops += o.flops;
        self.queue_seconds += o.queue_seconds;
        self.service_seconds += o.service_seconds;
        self.retry_seconds += o.retry_seconds;
    }
}

/// Service accounting, split per tenant with a global row — the
/// multi-tenant analogue of the gpu-sim `CostLedger`.
#[derive(Clone, Debug, Default)]
pub struct ServiceLedger {
    /// Sum over all tenants.
    pub global: TenantCounters,
    /// Per-tenant rows, keyed by tenant id.
    pub tenants: BTreeMap<String, TenantCounters>,
    /// Batches dispatched (fused or solo).
    pub batches: u64,
    /// Parallel regions actually issued by fused execution.
    pub fused_launches: u64,
    /// Worker threads that died (panicked) while serving.
    pub worker_panics: u64,
    /// Workers respawned by the supervisor after a death.
    pub workers_respawned: u64,
    /// Overload circuit-breaker open transitions.
    pub breaker_opens: u64,
    /// Overload circuit-breaker close transitions.
    pub breaker_closes: u64,
}

impl ServiceLedger {
    /// Apply one charge to a tenant's row *and* the global row.
    pub(super) fn charge(&mut self, tenant: &str, f: impl Fn(&mut TenantCounters)) {
        f(self.tenants.entry(tenant.to_string()).or_default());
        f(&mut self.global);
    }

    /// Verify the split-accounting invariant: summing every per-tenant row
    /// reproduces the global row (exactly for the integer counters, to a
    /// 1e-9 relative tolerance for the float accumulators, whose summation
    /// order differs between the two sides).
    pub fn reconcile(&self) -> Result<(), String> {
        let mut sum = TenantCounters::default();
        for row in self.tenants.values() {
            sum.add(row);
        }
        let ints = [
            (
                "jobs_submitted",
                sum.jobs_submitted,
                self.global.jobs_submitted,
            ),
            (
                "jobs_completed",
                sum.jobs_completed,
                self.global.jobs_completed,
            ),
            ("jobs_failed", sum.jobs_failed, self.global.jobs_failed),
            ("jobs_shed", sum.jobs_shed, self.global.jobs_shed),
            (
                "jobs_shed_overload",
                sum.jobs_shed_overload,
                self.global.jobs_shed_overload,
            ),
            ("jobs_lost", sum.jobs_lost, self.global.jobs_lost),
            ("jobs_aborted", sum.jobs_aborted, self.global.jobs_aborted),
            (
                "deadline_misses",
                sum.deadline_misses,
                self.global.deadline_misses,
            ),
            ("panels", sum.panels, self.global.panels),
            ("launches", sum.launches, self.global.launches),
            ("fused_jobs", sum.fused_jobs, self.global.fused_jobs),
            ("solo_jobs", sum.solo_jobs, self.global.solo_jobs),
            ("retry_jobs", sum.retry_jobs, self.global.retry_jobs),
            (
                "retry_attempts",
                sum.retry_attempts,
                self.global.retry_attempts,
            ),
            (
                "retry_launches",
                sum.retry_launches,
                self.global.retry_launches,
            ),
        ];
        for (name, got, want) in ints {
            if got != want {
                return Err(format!(
                    "ledger split broken: tenant {name} sum {got} != global {want}"
                ));
            }
        }
        let floats = [
            ("flops", sum.flops, self.global.flops),
            (
                "queue_seconds",
                sum.queue_seconds,
                self.global.queue_seconds,
            ),
            (
                "service_seconds",
                sum.service_seconds,
                self.global.service_seconds,
            ),
            (
                "retry_seconds",
                sum.retry_seconds,
                self.global.retry_seconds,
            ),
        ];
        for (name, got, want) in floats {
            if (got - want).abs() > 1e-9 * (1.0 + want.abs()) {
                return Err(format!(
                    "ledger split broken: tenant {name} sum {got} != global {want}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconcile_catches_a_skewed_row() {
        let mut ledger = ServiceLedger::default();
        ledger.charge("a", |c| {
            c.jobs_submitted += 2;
            c.retry_attempts += 3;
            c.retry_seconds += 0.25;
        });
        ledger.charge("b", |c| c.jobs_lost += 1);
        ledger.reconcile().expect("paired charges reconcile");
        ledger.global.retry_launches += 7; // skew the global row only
        let err = ledger.reconcile().expect_err("skew must be caught");
        assert!(err.contains("retry_launches"), "{err}");
    }
}
