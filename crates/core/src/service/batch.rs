//! The shape-fused batch engine: [`factor_many`] (the plain fast path)
//! and [`factor_many_resilient`] (the ABFT-verified, fault-isolating
//! path). Both group same-shape jobs into lockstep fused launches; the
//! resilient path additionally verifies every member's panel against the
//! [`crate::health`] checksums, wraps every packed task in
//! `catch_unwind`, and **carves** a faulted member out of the batch with a
//! typed [`CaqrError`] while its riders complete bit-identically.

use super::resilience::PlannedFault;
use crate::backend::DagGeometry;
use crate::block::{plan_tree, tile_panel, BlockSize};
use crate::blockops;
use crate::error::{checked_elems, CaqrError};
use crate::health;
use crate::multicore::{caqr_cpu, q_ones_probe_parts, CpuCaqr, CpuCaqrOptions, CpuPanel};
use crate::recovery::RecoveryPolicy;
use crate::tsqr::{col_blocks, TreeNode, WyTile};
use dense::matrix::Matrix;
use dense::scalar::Scalar;
use dense::MatPtr;
use gpu_sim::FaultKind;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The fusion key: jobs agreeing on all of this factor under one packed
/// launch sequence. Tree shapes are keyed by their *effective arity* — a
/// `DeviceArity` tree and an explicit `Arity(h/w)` tree plan identically.
/// Checksummed jobs never fuse (their verification passes interleave the
/// panel loop) and fall back to per-job [`caqr_cpu`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct FuseKey {
    m: usize,
    n: usize,
    h: usize,
    w: usize,
    arity: usize,
}

/// Classify one job: `Some(key)` if it can enter a fused group, `None` if
/// it must run solo (odd/invalid shapes, checksummed jobs). Solo jobs go
/// through [`caqr_cpu`] untouched, so invalid inputs surface exactly the
/// typed error a standalone run would produce.
pub(crate) fn fuse_key<T: Scalar>(a: &Matrix<T>, opts: &CpuCaqrOptions) -> Option<FuseKey> {
    let (m, n) = a.shape();
    let bs = BlockSize {
        h: opts.tile_rows,
        w: opts.panel_width,
    };
    if opts.verify_checksums
        || m == 0
        || n == 0
        || bs.validate().is_err()
        || checked_elems(m, n, "matrix element count").is_err()
    {
        return None;
    }
    Some(FuseKey {
        m,
        n,
        h: bs.h,
        w: bs.w,
        arity: opts.tree.arity(bs),
    })
}

/// What one [`factor_many`] call did, for the ledger and the benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Jobs that ran inside a fused group of two or more (members carved
    /// out by a fault still count: they consumed fused launches).
    pub fused_jobs: usize,
    /// Jobs that ran as standalone `caqr_cpu` calls (odd shapes, checksum
    /// jobs, or the only member of their shape class).
    pub solo_jobs: usize,
    /// Fused groups executed.
    pub fused_groups: usize,
    /// Parallel regions actually issued by the fused groups — the number a
    /// one-at-a-time schedule would multiply by the group size. Verified
    /// groups also count their checksum regions here.
    pub fused_launches: usize,
    /// Sum over jobs of the launch count the synchronous driver would
    /// report for that job alone ([`crate::DriveOutcome::launches`]).
    pub logical_launches: usize,
}

/// The launch count [`crate::backend::drive`] reports for one completed
/// host factorization: per panel, one level-0 factor launch plus one per
/// tree level, and the same again for the trailing apply when the panel
/// has trailing columns. The host health scan issues zero launches.
pub fn logical_launches<T: Scalar>(f: &CpuCaqr<T>) -> usize {
    let n = f.a.cols();
    f.panels
        .iter()
        .map(|p| {
            let chain = 1 + p.levels.len();
            if p.col0 + p.width < n {
                2 * chain
            } else {
                chain
            }
        })
        .sum()
}

/// Factor many independent matrices, fusing same-shape jobs into packed
/// lockstep launches. Returns one result per job, in input order, each
/// **bit-identical** to `caqr_cpu(a, opts)` on the same input.
///
/// Jobs are grouped by [shape class](FuseKey); each group of two or more
/// walks the synchronous panel schedule in lockstep, with the per-tile
/// factor tasks, per-group tree reductions, and per-(tile × column-block)
/// trailing updates of *all* jobs packed into one parallel region per
/// schedule step (a flat work list with per-job offsets). Odd shapes,
/// checksummed jobs, and singleton classes fall back to per-job
/// [`caqr_cpu`] runs. Fusion preserves bit-identity because every packed
/// task reads and writes only its own job's matrix and the schedule per
/// job is unchanged — see the conformance proptest in
/// `tests/service_batching.rs`.
pub fn factor_many<T: Scalar>(
    jobs: Vec<(Matrix<T>, CpuCaqrOptions)>,
) -> Vec<Result<CpuCaqr<T>, CaqrError>> {
    factor_many_with_stats(jobs).0
}

/// [`factor_many`] plus the fusion accounting the service ledger records.
pub fn factor_many_with_stats<T: Scalar>(
    jobs: Vec<(Matrix<T>, CpuCaqrOptions)>,
) -> (Vec<Result<CpuCaqr<T>, CaqrError>>, BatchStats) {
    let njobs = jobs.len();
    let mut stats = BatchStats::default();
    let mut mats: Vec<Option<Matrix<T>>> = Vec::with_capacity(njobs);
    let mut optsv: Vec<CpuCaqrOptions> = Vec::with_capacity(njobs);
    let mut out: Vec<Option<Result<CpuCaqr<T>, CaqrError>>> = Vec::with_capacity(njobs);
    let mut groups: BTreeMap<FuseKey, Vec<usize>> = BTreeMap::new();
    let mut solo: Vec<usize> = Vec::new();
    for (idx, (a, opts)) in jobs.into_iter().enumerate() {
        match fuse_key(&a, &opts) {
            Some(key) => groups.entry(key).or_default().push(idx),
            None => solo.push(idx),
        }
        mats.push(Some(a));
        optsv.push(opts);
        out.push(None);
    }

    for (key, idxs) in groups {
        if idxs.len() < 2 {
            solo.extend(idxs);
            continue;
        }
        run_fused_group(&key, &idxs, &mut mats, &optsv, &mut out, &mut stats);
    }
    for idx in solo {
        let a = mats[idx]
            .take()
            .expect("solo job matrix consumed exactly once");
        let res = caqr_cpu(a, optsv[idx]);
        if let Ok(f) = &res {
            stats.logical_launches += logical_launches(f);
        }
        stats.solo_jobs += 1;
        out[idx] = Some(res);
    }

    let results = out
        .into_iter()
        .map(|r| r.expect("every job produced a result"))
        .collect();
    (results, stats)
}

/// [`factor_many`] with fault isolation: the resilient batch engine behind
/// the service's chaos gate (DESIGN.md §15).
///
/// `faults[idx]` optionally schedules one injected fault against job
/// `idx` (missing / short slices mean "no fault"). `verify` additionally
/// turns on the ABFT checksums for every fused group and routes solo jobs
/// through the §10 escalation ladder even without a planned fault.
///
/// Semantics per job:
///
/// * a **fused member** whose fault fires (or whose packed task panics) is
///   carved out with a typed [`CaqrError`] — [`CaqrError::Fault`] /
///   [`CaqrError::Timeout`] / [`CaqrError::DeviceLost`] for admission
///   faults, [`CaqrError::ChecksumMismatch`] for an SDC caught by
///   verification, [`CaqrError::Panicked`] for a host panic — while every
///   rider completes **bit-identical** to its standalone run; the caller
///   (the service retry loop) re-runs the carved member solo through
///   [`super::run_solo_resilient`];
/// * a **solo job** with a planned fault runs the §10 ladder directly via
///   [`super::run_solo_resilient`], which recovers transient injections
///   internally — its output is bit-identical to a fault-free run;
/// * everything else behaves exactly like [`factor_many_with_stats`].
pub fn factor_many_resilient<T: Scalar>(
    jobs: Vec<(Matrix<T>, CpuCaqrOptions)>,
    faults: &[Option<PlannedFault>],
    verify: bool,
    policy: &RecoveryPolicy,
) -> (Vec<Result<CpuCaqr<T>, CaqrError>>, BatchStats) {
    let fault_at = |idx: usize| faults.get(idx).copied().flatten();
    let njobs = jobs.len();
    let mut stats = BatchStats::default();
    let mut mats: Vec<Option<Matrix<T>>> = Vec::with_capacity(njobs);
    let mut optsv: Vec<CpuCaqrOptions> = Vec::with_capacity(njobs);
    let mut out: Vec<Option<Result<CpuCaqr<T>, CaqrError>>> = Vec::with_capacity(njobs);
    let mut groups: BTreeMap<FuseKey, Vec<usize>> = BTreeMap::new();
    let mut solo: Vec<usize> = Vec::new();
    for (idx, (a, opts)) in jobs.into_iter().enumerate() {
        match fuse_key(&a, &opts) {
            Some(key) => groups.entry(key).or_default().push(idx),
            None => solo.push(idx),
        }
        mats.push(Some(a));
        optsv.push(opts);
        out.push(None);
    }

    for (key, idxs) in groups {
        if idxs.len() < 2 {
            solo.extend(idxs);
            continue;
        }
        if verify || idxs.iter().any(|&i| fault_at(i).is_some()) {
            run_fused_group_verified(&key, &idxs, faults, &mut mats, &optsv, &mut out, &mut stats);
        } else {
            run_fused_group(&key, &idxs, &mut mats, &optsv, &mut out, &mut stats);
        }
    }
    for idx in solo {
        let a = mats[idx]
            .take()
            .expect("solo job matrix consumed exactly once");
        let fault = fault_at(idx);
        let res = if fault.is_some() || verify {
            super::run_solo_resilient(a, optsv[idx], fault, policy).map(|(f, _)| f)
        } else {
            caqr_cpu(a, optsv[idx])
        };
        if let Ok(f) = &res {
            stats.logical_launches += logical_launches(f);
        }
        stats.solo_jobs += 1;
        out[idx] = Some(res);
    }

    let results = out
        .into_iter()
        .map(|r| r.expect("every job produced a result"))
        .collect();
    (results, stats)
}

/// Run one fused shape class: the synchronous panel schedule, executed in
/// lockstep across all member jobs with one packed work list per launch.
fn run_fused_group<T: Scalar>(
    key: &FuseKey,
    idxs: &[usize],
    mats: &mut [Option<Matrix<T>>],
    optsv: &[CpuCaqrOptions],
    out: &mut [Option<Result<CpuCaqr<T>, CaqrError>>],
    stats: &mut BatchStats,
) {
    let (m, n) = (key.m, key.n);
    let bs = BlockSize { h: key.h, w: key.w };

    // Fused health scan: one parallel region over the group, one verdict
    // per job. A NaN fails only its own job (same typed error, same first
    // offending coordinate, as a standalone run), and the group shrinks.
    let scans: Vec<Option<(usize, usize)>> = {
        let views: Vec<&Matrix<T>> = idxs
            .iter()
            .map(|&i| {
                mats[i]
                    .as_ref()
                    .expect("grouped job matrix present until consumed")
            })
            .collect();
        views
            .par_iter()
            .map(|a| health::first_nonfinite(a))
            .collect()
    };
    stats.fused_launches += 1;
    let mut members: Vec<usize> = Vec::with_capacity(idxs.len());
    for (&idx, scan) in idxs.iter().zip(&scans) {
        match scan {
            Some((row, col)) => {
                out[idx] = Some(Err(CaqrError::NonFinite {
                    context: "caqr_cpu input",
                    row: *row,
                    col: *col,
                }));
                mats[idx] = None;
                stats.solo_jobs += 1;
            }
            None => members.push(idx),
        }
    }
    if members.is_empty() {
        return;
    }

    let g = members.len();
    let mut owned: Vec<Matrix<T>> = members
        .iter()
        .map(|&i| mats[i].take().expect("fused job matrix consumed once"))
        .collect();
    // Lifetime-erased per-job matrix handles, shared by every packed task.
    // Safety contract (as in `factor_panel_host` / `apply_panel_parts`):
    // each task touches only its own job's disjoint tile / column block,
    // and `owned` is not accessed through any other path until the fused
    // loop finishes.
    let ptrs: Vec<MatPtr<T>> = owned.iter_mut().map(MatPtr::new).collect();

    let mut pan: Vec<Vec<CpuPanel<T>>> = (0..g).map(|_| Vec::new()).collect();
    let mut logical = 0usize;
    for step in DagGeometry::panel_steps(m, n, bs.w) {
        // Level 0, fused: the (job × tile) grid in one parallel region.
        // Job j's tasks occupy the packed range [j * nt, (j + 1) * nt).
        let tiles = tile_panel(step.c, m - step.c, bs.h, bs.w);
        let nt = tiles.len();
        let work: Vec<(usize, usize)> = (0..g)
            .flat_map(|j| (0..nt).map(move |ti| (j, ti)))
            .collect();
        let wy_flat: Vec<WyTile<T>> = work
            .par_iter()
            .map(|&(j, ti)| blockops::factor_tile(ptrs[j], tiles[ti], step.c, step.width))
            .collect();
        stats.fused_launches += 1;
        let mut wy_it = wy_flat.into_iter();
        let wy0s: Vec<Vec<WyTile<T>>> = (0..g).map(|_| wy_it.by_ref().take(nt).collect()).collect();

        // Tree levels, fused: the (job × group) grid per level, with a
        // barrier between levels exactly where the per-job schedule has one.
        let starts: Vec<usize> = tiles.iter().map(|t| t.start).collect();
        let plan = plan_tree(&starts, key.arity);
        let mut lvls: Vec<Vec<Vec<TreeNode<T>>>> = (0..g).map(|_| Vec::new()).collect();
        for level in &plan.levels {
            let ng = level.len();
            let work: Vec<(usize, usize)> = (0..g)
                .flat_map(|j| (0..ng).map(move |gi| (j, gi)))
                .collect();
            let nodes_flat: Vec<TreeNode<T>> = work
                .par_iter()
                .map(|&(j, gi)| {
                    blockops::factor_tree_group(ptrs[j], &level[gi].members, step.c, step.width)
                })
                .collect();
            stats.fused_launches += 1;
            let mut it = nodes_flat.into_iter();
            for lv in lvls.iter_mut() {
                lv.push(it.by_ref().take(ng).collect());
            }
        }
        logical += 1 + plan.levels.len();
        let lvl_sizes: Vec<usize> = plan.levels.iter().map(|l| l.len()).collect();

        // Trailing update, fused: horizontal (job × tile × column-block),
        // then each tree level — the same order `apply_panel_parts` uses.
        if step.c + step.width < n {
            let cols = col_blocks(step.c + step.width, n, bs.w);
            let ncb = cols.len();
            let work: Vec<(usize, usize, usize)> = (0..g)
                .flat_map(|j| (0..nt).flat_map(move |ti| (0..ncb).map(move |cb| (j, ti, cb))))
                .collect();
            work.par_iter().for_each(|&(j, ti, cb)| {
                let (c0, wc) = cols[cb];
                blockops::apply_tile_wy(&wy0s[j][ti], ptrs[j], tiles[ti], c0, wc, true);
            });
            stats.fused_launches += 1;
            for (li, ng) in lvl_sizes.iter().copied().enumerate() {
                let work: Vec<(usize, usize, usize)> = (0..g)
                    .flat_map(|j| (0..ng).flat_map(move |gi| (0..ncb).map(move |cb| (j, gi, cb))))
                    .collect();
                work.par_iter().for_each(|&(j, gi, cb)| {
                    let (c0, wc) = cols[cb];
                    blockops::apply_tree_node(ptrs[j], &lvls[j][li][gi], step.width, c0, wc, true);
                });
                stats.fused_launches += 1;
            }
            logical += 1 + plan.levels.len();
        }

        for ((p, wy0), lv) in pan.iter_mut().zip(wy0s).zip(lvls) {
            p.push(CpuPanel {
                col0: step.c,
                width: step.width,
                tiles: tiles.clone(),
                wy0,
                levels: lv,
            });
        }
    }

    for ((idx, a), panels) in members.iter().copied().zip(owned).zip(pan) {
        out[idx] = Some(Ok(CpuCaqr {
            a,
            panels,
            opts: optsv[idx],
        }));
    }
    stats.fused_jobs += g;
    stats.fused_groups += 1;
    stats.logical_launches += g * logical;
}

/// Does member `j`'s schedule call for a host panic in (`step`, `stage`)?
fn panics_here(
    sched: &[Option<(usize, u8, PlannedFault)>],
    j: usize,
    step: usize,
    stage: u8,
) -> bool {
    matches!(sched[j], Some((s, st, f)) if s == step && st == stage && f.kind == FaultKind::HostPanic)
}

/// Mark member `j` dead with a typed error; its riders keep running.
fn carve<T: Scalar>(
    out: &mut [Option<Result<CpuCaqr<T>, CaqrError>>],
    alive: &mut [bool],
    members: &[usize],
    j: usize,
    e: CaqrError,
) {
    alive[j] = false;
    out[members[j]] = Some(Err(e));
}

/// The verified fused runner: [`run_fused_group`]'s schedule with the
/// [`crate::health`] checksums interleaved per panel, per-task
/// `catch_unwind` isolation, and the planned faults of the group's members
/// injected at their scheduled (panel, stage). A member that faults is
/// carved out; every surviving member's output is bit-identical to its
/// standalone run because verification only *reads* and every packed task
/// touches only its own job's matrix.
///
/// Fault steering: a member's [`PlannedFault`] fires at panel
/// `(payload >> 16) % npanels`, against the apply stage when
/// `payload & 1 == 1` and the panel has trailing columns, else against the
/// factor stage. An SDC perturbs a checksummed location (`x → 2x + 1` on
/// the `R` diagonal for factor, on a trailing column for apply), so ABFT
/// detection — not luck — catches it.
/// One member's verification verdict: its index in the fused group, and
/// either the `Q·1` probe vector (trailing panels reuse it as the apply
/// predictor; `None` for the last panel) or the failed check's error.
type ProbeVerdict<T> = (usize, Result<Option<Vec<T>>, CaqrError>);

#[allow(clippy::too_many_arguments)]
fn run_fused_group_verified<T: Scalar>(
    key: &FuseKey,
    idxs: &[usize],
    faults: &[Option<PlannedFault>],
    mats: &mut [Option<Matrix<T>>],
    optsv: &[CpuCaqrOptions],
    out: &mut [Option<Result<CpuCaqr<T>, CaqrError>>],
    stats: &mut BatchStats,
) {
    let (m, n) = (key.m, key.n);
    let bs = BlockSize { h: key.h, w: key.w };

    // Fused health scan, as in the plain runner.
    let scans: Vec<Option<(usize, usize)>> = {
        let views: Vec<&Matrix<T>> = idxs
            .iter()
            .map(|&i| {
                mats[i]
                    .as_ref()
                    .expect("grouped job matrix present until consumed")
            })
            .collect();
        views
            .par_iter()
            .map(|a| health::first_nonfinite(a))
            .collect()
    };
    stats.fused_launches += 1;
    let mut members: Vec<usize> = Vec::with_capacity(idxs.len());
    for (&idx, scan) in idxs.iter().zip(&scans) {
        match scan {
            Some((row, col)) => {
                out[idx] = Some(Err(CaqrError::NonFinite {
                    context: "caqr_cpu input",
                    row: *row,
                    col: *col,
                }));
                mats[idx] = None;
                stats.solo_jobs += 1;
            }
            None => members.push(idx),
        }
    }
    if members.is_empty() {
        return;
    }

    let g = members.len();
    let mut owned: Vec<Matrix<T>> = members
        .iter()
        .map(|&i| mats[i].take().expect("fused job matrix consumed once"))
        .collect();
    let mut alive: Vec<bool> = vec![true; g];
    let mut pan: Vec<Vec<CpuPanel<T>>> = (0..g).map(|_| Vec::new()).collect();

    let steps = DagGeometry::panel_steps(m, n, bs.w);
    let nsteps = steps.len() as u64;
    // Per-member fault schedule: (panel, stage, fault). Stage 1 (apply) is
    // demoted to 0 (factor) when the chosen panel has no trailing columns.
    let sched: Vec<Option<(usize, u8, PlannedFault)>> = members
        .iter()
        .map(|&idx| {
            faults.get(idx).copied().flatten().map(|f| {
                let s = ((f.payload >> 16) % nsteps) as usize;
                let trailing = steps[s].c + steps[s].width < n;
                let stage = if trailing { (f.payload & 1) as u8 } else { 0 };
                (s, stage, f)
            })
        })
        .collect();

    let mut logical = 0usize;
    for step in &steps {
        let si = step.p;
        let tiles = tile_panel(step.c, m - step.c, bs.h, bs.w);
        let nt = tiles.len();
        let trailing = step.c + step.width < n;

        // Admission faults against the factor stage fail the member before
        // any of its tasks are packed, mirroring `gpu_sim::Device::admit`.
        for j in 0..g {
            if !alive[j] {
                continue;
            }
            if let Some((s, 0, f)) = sched[j] {
                if s == si {
                    match f.kind {
                        FaultKind::LaunchFail => carve(
                            out,
                            &mut alive,
                            &members,
                            j,
                            CaqrError::Fault {
                                kernel: "fused_factor",
                                launch_index: f.ordinal,
                                attempts: 1,
                            },
                        ),
                        FaultKind::Hang => carve(
                            out,
                            &mut alive,
                            &members,
                            j,
                            CaqrError::Timeout {
                                kernel: "fused_factor",
                                launch_index: f.ordinal,
                                deadline_us: 1_000,
                            },
                        ),
                        FaultKind::DeviceLoss => carve(
                            out,
                            &mut alive,
                            &members,
                            j,
                            CaqrError::DeviceLost {
                                kernel: "fused_factor",
                                launch_index: f.ordinal,
                            },
                        ),
                        FaultKind::Sdc | FaultKind::HostPanic => {}
                    }
                }
            }
        }
        let live: Vec<usize> = (0..g).filter(|&j| alive[j]).collect();
        if live.is_empty() {
            break;
        }

        // Pre-factor checksums (read-only, one fused region).
        let mut pre: Vec<Option<Vec<f64>>> = vec![None; g];
        let sums: Vec<(usize, Vec<f64>)> = live
            .par_iter()
            .map(|&j| {
                (
                    j,
                    health::panel_col_sumsq(&owned[j], step.c, step.c, step.width),
                )
            })
            .collect();
        stats.fused_launches += 1;
        for (j, s) in sums {
            pre[j] = Some(s);
        }

        // Level 0, fused, each task isolated by catch_unwind so one
        // member's panic cannot poison its riders' region.
        let mut wy0s: Vec<Vec<WyTile<T>>> = (0..g).map(|_| Vec::new()).collect();
        {
            let ptrs: Vec<MatPtr<T>> = owned.iter_mut().map(MatPtr::new).collect();
            let work: Vec<(usize, usize)> = live
                .iter()
                .flat_map(|&j| (0..nt).map(move |ti| (j, ti)))
                .collect();
            let wy_flat: Vec<Result<WyTile<T>, ()>> = work
                .par_iter()
                .map(|&(j, ti)| {
                    catch_unwind(AssertUnwindSafe(|| {
                        if ti == 0 && panics_here(&sched, j, si, 0) {
                            panic!("injected host panic: fused factor task");
                        }
                        blockops::factor_tile(ptrs[j], tiles[ti], step.c, step.width)
                    }))
                    .map_err(|_| ())
                })
                .collect();
            stats.fused_launches += 1;
            let mut it = wy_flat.into_iter();
            for &j in &live {
                let mine: Vec<Result<WyTile<T>, ()>> = it.by_ref().take(nt).collect();
                if mine.iter().any(|r| r.is_err()) {
                    carve(
                        out,
                        &mut alive,
                        &members,
                        j,
                        CaqrError::Panicked {
                            context: format!("fused factor task of panel {si}"),
                        },
                    );
                } else {
                    wy0s[j] = mine
                        .into_iter()
                        .map(|r| r.expect("absence of Err checked above"))
                        .collect();
                }
            }
        }

        // Tree levels, fused, with the same per-task isolation.
        let starts: Vec<usize> = tiles.iter().map(|t| t.start).collect();
        let plan = plan_tree(&starts, key.arity);
        let lvl_sizes: Vec<usize> = plan.levels.iter().map(|l| l.len()).collect();
        let mut lvls: Vec<Vec<Vec<TreeNode<T>>>> = (0..g).map(|_| Vec::new()).collect();
        for level in &plan.levels {
            let ng = level.len();
            let live_now: Vec<usize> = (0..g).filter(|&j| alive[j]).collect();
            if live_now.is_empty() {
                break;
            }
            let ptrs: Vec<MatPtr<T>> = owned.iter_mut().map(MatPtr::new).collect();
            let work: Vec<(usize, usize)> = live_now
                .iter()
                .flat_map(|&j| (0..ng).map(move |gi| (j, gi)))
                .collect();
            let nodes_flat: Vec<Result<TreeNode<T>, ()>> = work
                .par_iter()
                .map(|&(j, gi)| {
                    catch_unwind(AssertUnwindSafe(|| {
                        blockops::factor_tree_group(ptrs[j], &level[gi].members, step.c, step.width)
                    }))
                    .map_err(|_| ())
                })
                .collect();
            stats.fused_launches += 1;
            let mut it = nodes_flat.into_iter();
            for &j in &live_now {
                let mine: Vec<Result<TreeNode<T>, ()>> = it.by_ref().take(ng).collect();
                if mine.iter().any(|r| r.is_err()) {
                    carve(
                        out,
                        &mut alive,
                        &members,
                        j,
                        CaqrError::Panicked {
                            context: format!("fused factor-tree task of panel {si}"),
                        },
                    );
                } else {
                    lvls[j].push(
                        mine.into_iter()
                            .map(|r| r.expect("absence of Err checked above"))
                            .collect(),
                    );
                }
            }
        }
        logical += 1 + plan.levels.len();

        // Injected factor-stage SDC: perturb the member's R diagonal after
        // the factor chain, inside the column-norm checksum's coverage.
        for j in 0..g {
            if !alive[j] {
                continue;
            }
            if let Some((s, 0, f)) = sched[j] {
                if s == si && f.kind == FaultKind::Sdc {
                    let r = (f.payload % step.width as u64) as usize;
                    let x = owned[j][(step.c + r, step.c + r)];
                    owned[j][(step.c + r, step.c + r)] = x + x + T::ONE;
                }
            }
        }

        // Factor verification: column-norm invariant, plus the Q·1 probe
        // (which doubles as the apply predictor) for trailing panels.
        let mut us: Vec<Option<Vec<T>>> = vec![None; g];
        {
            let live_now: Vec<usize> = (0..g).filter(|&j| alive[j]).collect();
            let verdicts: Vec<ProbeVerdict<T>> = live_now
                .par_iter()
                .map(|&j| {
                    let v = (|| {
                        let p = pre[j].as_ref().expect("pre sums computed for live member");
                        health::factor_norm_check::<T>(&owned[j], p, m, si, step.c, step.width)?;
                        if trailing {
                            let u = q_ones_probe_parts(m, &tiles, &wy0s[j], &lvls[j], step.width);
                            health::verify_probe(&u, si, step.c)?;
                            Ok(Some(u))
                        } else {
                            Ok(None)
                        }
                    })();
                    (j, v)
                })
                .collect();
            stats.fused_launches += 1;
            for (j, v) in verdicts {
                match v {
                    Ok(u) => us[j] = u,
                    Err(e) => carve(out, &mut alive, &members, j, e),
                }
            }
        }

        // Trailing update, fused and verified.
        if trailing {
            let cols = col_blocks(step.c + step.width, n, bs.w);
            let ncb = cols.len();

            // Admission faults against the apply stage.
            for j in 0..g {
                if !alive[j] {
                    continue;
                }
                if let Some((s, 1, f)) = sched[j] {
                    if s == si {
                        match f.kind {
                            FaultKind::LaunchFail => carve(
                                out,
                                &mut alive,
                                &members,
                                j,
                                CaqrError::Fault {
                                    kernel: "fused_apply",
                                    launch_index: f.ordinal,
                                    attempts: 1,
                                },
                            ),
                            FaultKind::Hang => carve(
                                out,
                                &mut alive,
                                &members,
                                j,
                                CaqrError::Timeout {
                                    kernel: "fused_apply",
                                    launch_index: f.ordinal,
                                    deadline_us: 1_000,
                                },
                            ),
                            FaultKind::DeviceLoss => carve(
                                out,
                                &mut alive,
                                &members,
                                j,
                                CaqrError::DeviceLost {
                                    kernel: "fused_apply",
                                    launch_index: f.ordinal,
                                },
                            ),
                            FaultKind::Sdc | FaultKind::HostPanic => {}
                        }
                    }
                }
            }

            // Predicted post-update column sums from pre-update data.
            let mut preds: Vec<Option<Vec<(f64, f64)>>> = vec![None; g];
            let live_now: Vec<usize> = (0..g).filter(|&j| alive[j]).collect();
            if !live_now.is_empty() {
                let ps: Vec<(usize, Vec<(f64, f64)>)> = live_now
                    .par_iter()
                    .map(|&j| {
                        let u = us[j].as_ref().expect("probe computed for trailing panel");
                        (j, health::predicted_col_sums(u, &owned[j], &cols))
                    })
                    .collect();
                stats.fused_launches += 1;
                for (j, p) in ps {
                    preds[j] = Some(p);
                }

                // Horizontal applies, isolated per task.
                {
                    let ptrs: Vec<MatPtr<T>> = owned.iter_mut().map(MatPtr::new).collect();
                    let work: Vec<(usize, usize, usize)> = live_now
                        .iter()
                        .flat_map(|&j| {
                            (0..nt).flat_map(move |ti| (0..ncb).map(move |cb| (j, ti, cb)))
                        })
                        .collect();
                    let results: Vec<Result<(), ()>> = work
                        .par_iter()
                        .map(|&(j, ti, cb)| {
                            catch_unwind(AssertUnwindSafe(|| {
                                if ti == 0 && cb == 0 && panics_here(&sched, j, si, 1) {
                                    panic!("injected host panic: fused apply task");
                                }
                                let (c0, wc) = cols[cb];
                                blockops::apply_tile_wy(
                                    &wy0s[j][ti],
                                    ptrs[j],
                                    tiles[ti],
                                    c0,
                                    wc,
                                    true,
                                );
                            }))
                            .map_err(|_| ())
                        })
                        .collect();
                    stats.fused_launches += 1;
                    let mut it = results.into_iter();
                    for &j in &live_now {
                        let bad = it.by_ref().take(nt * ncb).any(|r| r.is_err());
                        if bad {
                            carve(
                                out,
                                &mut alive,
                                &members,
                                j,
                                CaqrError::Panicked {
                                    context: format!("fused apply task of panel {si}"),
                                },
                            );
                        }
                    }
                }

                // Tree-level applies.
                for (li, ng) in lvl_sizes.iter().copied().enumerate() {
                    let live2: Vec<usize> = (0..g).filter(|&j| alive[j]).collect();
                    if live2.is_empty() {
                        break;
                    }
                    let ptrs: Vec<MatPtr<T>> = owned.iter_mut().map(MatPtr::new).collect();
                    let work: Vec<(usize, usize, usize)> = live2
                        .iter()
                        .flat_map(|&j| {
                            (0..ng).flat_map(move |gi| (0..ncb).map(move |cb| (j, gi, cb)))
                        })
                        .collect();
                    let results: Vec<Result<(), ()>> = work
                        .par_iter()
                        .map(|&(j, gi, cb)| {
                            catch_unwind(AssertUnwindSafe(|| {
                                let (c0, wc) = cols[cb];
                                blockops::apply_tree_node(
                                    ptrs[j],
                                    &lvls[j][li][gi],
                                    step.width,
                                    c0,
                                    wc,
                                    true,
                                );
                            }))
                            .map_err(|_| ())
                        })
                        .collect();
                    stats.fused_launches += 1;
                    let mut it = results.into_iter();
                    for &j in &live2 {
                        let bad = it.by_ref().take(ng * ncb).any(|r| r.is_err());
                        if bad {
                            carve(
                                out,
                                &mut alive,
                                &members,
                                j,
                                CaqrError::Panicked {
                                    context: format!("fused apply-tree task of panel {si}"),
                                },
                            );
                        }
                    }
                }

                // Injected apply-stage SDC: perturb a trailing column cell
                // the predicted-sum checksum covers.
                for j in 0..g {
                    if !alive[j] {
                        continue;
                    }
                    if let Some((s, 1, f)) = sched[j] {
                        if s == si && f.kind == FaultKind::Sdc {
                            let row = tiles[0].start;
                            let col = cols[0].0;
                            let x = owned[j][(row, col)];
                            owned[j][(row, col)] = x + x + T::ONE;
                        }
                    }
                }

                // Apply verification.
                let live3: Vec<usize> = (0..g).filter(|&j| alive[j]).collect();
                let verdicts: Vec<(usize, Result<(), CaqrError>)> = live3
                    .par_iter()
                    .map(|&j| {
                        let p = preds[j]
                            .as_ref()
                            .expect("predictions computed for live member");
                        (j, health::apply_sum_check::<T>(&owned[j], p, &cols, m, si))
                    })
                    .collect();
                stats.fused_launches += 1;
                for (j, v) in verdicts {
                    if let Err(e) = v {
                        carve(out, &mut alive, &members, j, e);
                    }
                }
            }
            logical += 1 + plan.levels.len();
        }

        for j in 0..g {
            if !alive[j] {
                continue;
            }
            pan[j].push(CpuPanel {
                col0: step.c,
                width: step.width,
                tiles: tiles.clone(),
                wy0: std::mem::take(&mut wy0s[j]),
                levels: std::mem::take(&mut lvls[j]),
            });
        }
    }

    let survivors = alive.iter().filter(|&&x| x).count();
    for ((j, a), panels) in owned.into_iter().enumerate().zip(pan) {
        if !alive[j] {
            continue;
        }
        out[members[j]] = Some(Ok(CpuCaqr {
            a,
            panels,
            opts: optsv[members[j]],
        }));
    }
    stats.fused_jobs += g;
    stats.fused_groups += 1;
    stats.logical_launches += survivors * logical;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::TreeShape;

    fn opts(h: usize, w: usize) -> CpuCaqrOptions {
        CpuCaqrOptions {
            tile_rows: h,
            panel_width: w,
            tree: TreeShape::DeviceArity,
            verify_checksums: false,
        }
    }

    #[test]
    fn factor_many_is_bit_identical_to_sequential_runs() {
        let inputs: Vec<(Matrix<f64>, CpuCaqrOptions)> = vec![
            (dense::generate::uniform(300, 16, 1), opts(48, 16)),
            (dense::generate::uniform(300, 16, 2), opts(48, 16)),
            (dense::generate::uniform(200, 8, 3), opts(32, 8)),
            (dense::generate::uniform(300, 16, 4), opts(48, 16)),
            (dense::generate::uniform(127, 5, 5), opts(24, 5)),
        ];
        let (results, stats) =
            factor_many_with_stats(inputs.iter().map(|(a, o)| (a.clone(), *o)).collect());
        assert_eq!(stats.fused_jobs, 3);
        assert_eq!(stats.solo_jobs, 2);
        assert_eq!(stats.fused_groups, 1);
        for ((a, o), got) in inputs.into_iter().zip(results) {
            let got = got.unwrap();
            let want = caqr_cpu(a, o).unwrap();
            assert_eq!(got.a, want.a);
            assert_eq!(got.panels.len(), want.panels.len());
            assert_eq!(logical_launches(&got), logical_launches(&want));
        }
    }

    #[test]
    fn fused_group_spends_fewer_launches_than_one_at_a_time() {
        let jobs: Vec<(Matrix<f64>, CpuCaqrOptions)> = (0..6)
            .map(|s| (dense::generate::uniform(400, 16, 100 + s), opts(64, 16)))
            .collect();
        let (results, stats) = factor_many_with_stats(jobs);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(stats.fused_jobs, 6);
        // 6 jobs' logical chains were packed into one group's regions (plus
        // the one fused health scan): the whole point of the batch path.
        assert!(
            stats.fused_launches < stats.logical_launches,
            "fused {} vs logical {}",
            stats.fused_launches,
            stats.logical_launches
        );
    }

    #[test]
    fn nonfinite_member_fails_alone_with_the_standalone_error() {
        let mut bad = dense::generate::uniform::<f64>(300, 16, 7);
        bad[(17, 3)] = f64::NAN;
        let good = dense::generate::uniform::<f64>(300, 16, 8);
        let (results, _) = factor_many_with_stats(vec![
            (good.clone(), opts(48, 16)),
            (bad.clone(), opts(48, 16)),
            (dense::generate::uniform::<f64>(300, 16, 9), opts(48, 16)),
        ]);
        let want_err = match caqr_cpu(bad, opts(48, 16)) {
            Err(e) => e,
            Ok(_) => panic!("NaN input must fail standalone"),
        };
        match &results[1] {
            Err(e) => assert_eq!(e, &want_err),
            Ok(_) => panic!("NaN member must fail in the batch too"),
        }
        let got = results[0].as_ref().unwrap();
        let want = caqr_cpu(good, opts(48, 16)).unwrap();
        assert_eq!(got.a, want.a);
    }

    #[test]
    fn checksummed_jobs_run_solo_and_still_match() {
        let a = dense::generate::uniform::<f64>(256, 8, 11);
        let mut o = opts(32, 8);
        o.verify_checksums = true;
        let (results, stats) = factor_many_with_stats(vec![(a.clone(), o), (a.clone(), o)]);
        assert_eq!(stats.solo_jobs, 2);
        assert_eq!(stats.fused_jobs, 0);
        let want = caqr_cpu(a, o).unwrap();
        for r in &results {
            assert_eq!(r.as_ref().unwrap().a, want.a);
        }
    }

    #[test]
    fn verified_batch_without_faults_is_bit_identical_to_plain() {
        let jobs: Vec<(Matrix<f64>, CpuCaqrOptions)> = (0..4)
            .map(|s| (dense::generate::uniform(260, 12, 40 + s), opts(48, 12)))
            .collect();
        let faults = vec![None; jobs.len()];
        let (results, stats) = factor_many_resilient(
            jobs.iter().map(|(a, o)| (a.clone(), *o)).collect(),
            &faults,
            true,
            &RecoveryPolicy::default(),
        );
        assert_eq!(stats.fused_jobs, 4);
        for ((a, o), got) in jobs.into_iter().zip(results) {
            let want = caqr_cpu(a, o).unwrap();
            assert_eq!(got.unwrap().a, want.a, "verified fused must stay bitwise");
        }
    }

    #[test]
    fn every_fault_kind_carves_only_its_member_and_riders_stay_bitwise() {
        use gpu_sim::FaultKind;
        let mk = |s: u64| dense::generate::uniform::<f64>(220, 16, 70 + s);
        let kinds = [
            (FaultKind::LaunchFail, 0u64),
            (FaultKind::Hang, 1),
            (FaultKind::Sdc, 0),       // factor-stage SDC
            (FaultKind::Sdc, 1),       // apply-stage SDC
            (FaultKind::HostPanic, 0), // factor-stage panic
            (FaultKind::HostPanic, 1), // apply-stage panic
            (FaultKind::DeviceLoss, 0),
        ];
        for (kind, stage) in kinds {
            let jobs: Vec<(Matrix<f64>, CpuCaqrOptions)> =
                (0..3).map(|s| (mk(s), opts(48, 16))).collect();
            // Member 1 carries the fault, steered to panel 0 and `stage`.
            let faults = vec![
                None,
                Some(PlannedFault {
                    kind,
                    ordinal: 42,
                    payload: stage,
                }),
                None,
            ];
            let (results, stats) = factor_many_resilient(
                jobs.iter().map(|(a, o)| (a.clone(), *o)).collect(),
                &faults,
                false,
                &RecoveryPolicy::default(),
            );
            assert_eq!(stats.fused_groups, 1);
            let e = match &results[1] {
                Err(e) => e,
                Ok(_) => panic!("{kind:?}/{stage} member must be carved out"),
            };
            match kind {
                FaultKind::LaunchFail => assert!(matches!(e, CaqrError::Fault { .. }), "{e:?}"),
                FaultKind::Hang => assert!(matches!(e, CaqrError::Timeout { .. }), "{e:?}"),
                FaultKind::Sdc => {
                    assert!(matches!(e, CaqrError::ChecksumMismatch { .. }), "{e:?}")
                }
                FaultKind::HostPanic => assert!(matches!(e, CaqrError::Panicked { .. }), "{e:?}"),
                FaultKind::DeviceLoss => {
                    assert!(matches!(e, CaqrError::DeviceLost { .. }), "{e:?}")
                }
            }
            // Riders complete bit-identically despite the carved member.
            for (i, (a, o)) in jobs.into_iter().enumerate() {
                if i == 1 {
                    continue;
                }
                let want = caqr_cpu(a, o).unwrap();
                assert_eq!(
                    results[i].as_ref().unwrap().a,
                    want.a,
                    "rider {i} diverged under {kind:?}/{stage}"
                );
            }
        }
    }
}
