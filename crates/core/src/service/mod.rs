//! Batched multi-tenant QR service: a bounded admission queue feeding
//! supervised worker threads that pack many independent CAQR jobs into
//! **shape-fused launches** (DESIGN.md §14), with service-tier fault
//! tolerance layered on top (DESIGN.md §15).
//!
//! The paper's design wins by keeping the hardware saturated; production
//! traffic is not one 65536x16 matrix but thousands of concurrent
//! small-to-large factorizations. At tall-skinny widths the host path is
//! launch-bound, not flop-bound — the vendored rayon shim (like a real GPU
//! at small grid sizes) pays a fixed fan-out cost per parallel region — so
//! the throughput core here is [`factor_many`]: jobs whose matrices share a
//! shape class walk the synchronous panel schedule **in lockstep**, with
//! every per-tile task of every job packed into one parallel region
//! (per-job offsets into one flat work list). Because each
//! [`crate::blockops`] task is a pure function of its own job's matrix
//! region, fusion changes *where* tasks run and nothing about what they
//! compute: every serviced matrix is bit-identical to a standalone
//! [`caqr_cpu`](crate::multicore::caqr_cpu) run, which the conformance
//! suite pins.
//!
//! On top of the batch engine sits [`Service`]: a bounded, backpressured
//! admission queue ([`Service::submit`] blocks when full,
//! [`Service::try_submit`] returns the job), priority classes, optional
//! per-job deadlines (expired jobs are shed at dispatch — the admission
//! analogue of the gpu-sim watchdog that kills hung launches), and a
//! per-tenant [`ServiceLedger`] split out of the global counters, whose
//! per-tenant sums reconcile exactly against the global row.
//!
//! The resilience layer (PR 10) extends all of that to misbehaving
//! traffic and misbehaving infrastructure:
//!
//! * **fault-isolated fused batches** — [`factor_many_resilient`] threads
//!   the ABFT checksums of [`crate::health`] and per-task `catch_unwind`
//!   isolation through the fused engine, so a batch member hit by an
//!   injected SDC / hang / launch fault (or whose task panics) is *carved
//!   out* with a typed [`CaqrError`] while its riders complete untouched
//!   and bit-identical; the service then retries the carved member solo
//!   down the §10 escalation ladder ([`run_solo_resilient`]) under a
//!   bounded [`RetryBudget`] with exponential backoff.
//! * **worker supervision** — worker bodies run under `catch_unwind`; a
//!   dead worker's in-flight tickets are resolved with
//!   [`ServiceError::WorkerLost`] and the worker is respawned, so every
//!   admitted [`Ticket`] resolves with a result or a typed error, never a
//!   hang. [`Service::shutdown_now`] drains still-queued jobs in admission
//!   order with [`ServiceError::ShuttingDown`].
//! * **overload protection** — per-tenant admission quotas
//!   ([`TenantQuota`]) and a circuit breaker ([`ShedPolicy`]) that sheds
//!   `Batch`-priority work when queue depth or the deadline-miss rate
//!   crosses a threshold, with hysteresis and ledger-visible shed counters.

mod batch;
mod ledger;
mod queue;
mod resilience;

pub use batch::{
    factor_many, factor_many_resilient, factor_many_with_stats, logical_launches, BatchStats,
};
pub use ledger::{ServiceLedger, TenantCounters};
pub use queue::{JobOutcome, Service, Ticket};
pub use resilience::{
    run_solo_resilient, service_retryable, PlannedFault, ResilienceConfig, RetryBudget,
    ServiceFaultPlan, ShedPolicy, TenantQuota,
};

use crate::error::CaqrError;
use crate::multicore::CpuCaqrOptions;
use dense::matrix::Matrix;
use dense::scalar::Scalar;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Recover a lock even if a holder panicked: the queue, ledger, breaker
/// and flight board hold plain data whose invariants are re-established by
/// every transition, so continuing after a poisoned lock beats deadlocking
/// the service — a supervised worker that died mid-section must not take
/// the whole pool down with it.
pub(crate) fn lock<'a, S>(m: &'a Mutex<S>) -> MutexGuard<'a, S> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------------
// Job specification
// ---------------------------------------------------------------------------

/// Priority class of a service job. Lower is served first when the queue
/// has a backlog; within a class, admission order wins.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive: always dispatched ahead of a backlog.
    Interactive,
    /// The default class.
    #[default]
    Standard,
    /// Throughput traffic that tolerates queueing — and is the first (and
    /// only) class the overload breaker sheds.
    Batch,
}

impl Priority {
    /// All classes, in dispatch-preference order.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Standard, Priority::Batch];

    /// Stable lowercase name (report keys, ledger rows).
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Batch => "batch",
        }
    }
}

/// One factorization request: the matrix, the host options, and the
/// multi-tenant metadata the scheduler and ledger act on.
pub struct JobSpec<T: Scalar> {
    /// The matrix to factor.
    pub a: Matrix<T>,
    /// Host CAQR options (tile shape, tree, checksums).
    pub opts: CpuCaqrOptions,
    /// Accounting identity the job is charged to.
    pub tenant: String,
    /// Dispatch priority class.
    pub priority: Priority,
    /// Optional completion deadline, relative to submission. A job still
    /// queued past its deadline is **shed** at dispatch with
    /// [`ServiceError::DeadlineExpired`] instead of burning worker time; a
    /// job that completes late is served but counted as a deadline miss.
    pub deadline: Option<Duration>,
}

impl<T: Scalar> JobSpec<T> {
    /// A default-tenant, standard-priority, deadline-free job.
    pub fn new(a: Matrix<T>, opts: CpuCaqrOptions) -> JobSpec<T> {
        JobSpec {
            a,
            opts,
            tenant: "default".to_string(),
            priority: Priority::Standard,
            deadline: None,
        }
    }

    /// Set the tenant id.
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Set the priority class.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Set the completion deadline (relative to submission).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

// ---------------------------------------------------------------------------
// Service configuration
// ---------------------------------------------------------------------------

/// Service sizing and policy knobs. The resilience, shedding and quota
/// fields all default to "off" — a default-configured service behaves
/// exactly like the pre-resilience service (no verification overhead, no
/// shedding beyond expired deadlines, no quotas).
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads pulling batches off the queue (min 1).
    pub workers: usize,
    /// Queue bound: [`Service::submit`] blocks and [`Service::try_submit`]
    /// rejects once this many jobs are queued (backpressure).
    pub queue_capacity: usize,
    /// Largest fused group a worker will gather per dispatch. `1` disables
    /// fusion (the one-at-a-time baseline of the benches).
    pub max_batch: usize,
    /// Fault injection, batch verification, and the solo-retry budget.
    pub resilience: ResilienceConfig,
    /// Overload circuit-breaker policy (default: disabled).
    pub shed: ShedPolicy,
    /// Per-tenant admission quota (default: unlimited).
    pub quota: TenantQuota,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 1,
            queue_capacity: 64,
            max_batch: 8,
            resilience: ResilienceConfig::default(),
            shed: ShedPolicy::disabled(),
            quota: TenantQuota::Unlimited,
        }
    }
}

// ---------------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------------

/// Why a submission was not accepted. The job comes back untouched.
pub enum SubmitError<T: Scalar> {
    /// The queue is at capacity (only from [`Service::try_submit`]).
    Full(JobSpec<T>),
    /// The tenant has hit its admission quota ([`TenantQuota`]); the job is
    /// rejected immediately — quota violations never block, even through
    /// [`Service::submit`], so one tenant cannot park on the backpressure
    /// path and starve the rest.
    QuotaExceeded {
        /// The rejected job.
        spec: JobSpec<T>,
        /// Jobs the tenant already had queued.
        queued: usize,
        /// The cap that was hit.
        quota: usize,
    },
    /// The service is shutting down.
    Shutdown(JobSpec<T>),
}

impl<T: Scalar> std::fmt::Debug for SubmitError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full(_) => write!(f, "SubmitError::Full"),
            SubmitError::QuotaExceeded { queued, quota, .. } => write!(
                f,
                "SubmitError::QuotaExceeded {{ queued: {queued}, quota: {quota} }}"
            ),
            SubmitError::Shutdown(_) => write!(f, "SubmitError::Shutdown"),
        }
    }
}

impl<T: Scalar> std::fmt::Display for SubmitError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full(_) => {
                write!(f, "queue full: the job was returned to the caller")
            }
            SubmitError::QuotaExceeded { queued, quota, .. } => write!(
                f,
                "tenant quota exceeded: {queued} jobs already queued against a cap of {quota}"
            ),
            SubmitError::Shutdown(_) => {
                write!(
                    f,
                    "service is shutting down: the job was returned to the caller"
                )
            }
        }
    }
}

impl<T: Scalar> std::error::Error for SubmitError<T> {}

/// Why a serviced job failed.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// The factorization itself failed.
    Caqr(CaqrError),
    /// The job was still queued when its deadline passed; it was shed at
    /// dispatch without factoring (the admission-side analogue of the
    /// watchdog killing a hung launch).
    DeadlineExpired {
        /// How long the job had been queued when it was shed.
        queued: Duration,
        /// The deadline it carried.
        deadline: Duration,
    },
    /// The overload circuit breaker was open at dispatch and the job's
    /// class is sheddable ([`Priority::Batch`]); it was dropped to protect
    /// latency-sensitive traffic (DESIGN.md §15).
    Overloaded {
        /// Queue depth observed at the shedding dispatch.
        queue_depth: usize,
        /// The class the job ran under.
        priority: Priority,
    },
    /// The job kept failing with retryable faults until the solo-retry
    /// budget ([`RetryBudget`]) ran out.
    RetryExhausted {
        /// Solo retry attempts performed.
        attempts: u32,
        /// The error the final attempt died with.
        last: CaqrError,
    },
    /// The worker thread serving the job died (panicked) before delivering
    /// a result. The supervisor resolves the ticket with this error and
    /// respawns the worker; resubmitting the job is safe.
    WorkerLost {
        /// Index of the dead worker, when the supervisor knows it; `None`
        /// when the loss was detected structurally (the result channel
        /// closed without a message).
        worker: Option<usize>,
    },
    /// The service shut down before the job was served
    /// ([`Service::shutdown_now`] drains queued jobs with this error, in
    /// admission order).
    ShuttingDown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Caqr(e) => write!(f, "factorization failed: {e}"),
            ServiceError::DeadlineExpired { queued, deadline } => write!(
                f,
                "deadline expired: queued {:.1} ms against a {:.1} ms deadline",
                queued.as_secs_f64() * 1e3,
                deadline.as_secs_f64() * 1e3
            ),
            ServiceError::Overloaded {
                queue_depth,
                priority,
            } => write!(
                f,
                "overloaded: {} job shed with the circuit breaker open at queue depth {queue_depth}",
                priority.name()
            ),
            ServiceError::RetryExhausted { attempts, last } => write!(
                f,
                "retry budget exhausted after {attempts} solo retries; last error: {last}"
            ),
            ServiceError::WorkerLost { worker } => match worker {
                Some(w) => write!(f, "worker {w} died before delivering the job's result"),
                None => write!(
                    f,
                    "a worker died before delivering the job's result (channel closed)"
                ),
            },
            ServiceError::ShuttingDown => {
                write!(f, "service shut down before the job completed")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Caqr(e) | ServiceError::RetryExhausted { last: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<CaqrError> for ServiceError {
    fn from(e: CaqrError) -> Self {
        ServiceError::Caqr(e)
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;
    use std::error::Error;

    fn opts() -> CpuCaqrOptions {
        CpuCaqrOptions {
            tile_rows: 16,
            panel_width: 4,
            tree: crate::block::TreeShape::DeviceArity,
            verify_checksums: false,
        }
    }

    fn spec() -> JobSpec<f64> {
        JobSpec::new(dense::generate::uniform::<f64>(32, 4, 1), opts())
    }

    #[test]
    fn every_service_error_variant_displays_its_facts() {
        let caqr_err = CaqrError::BadShape("empty matrix 0x4".into());
        let cases: Vec<(ServiceError, Vec<&str>)> = vec![
            (
                ServiceError::Caqr(caqr_err.clone()),
                vec!["factorization failed", "empty matrix 0x4"],
            ),
            (
                ServiceError::DeadlineExpired {
                    queued: Duration::from_millis(250),
                    deadline: Duration::from_millis(100),
                },
                vec!["deadline expired", "250.0 ms", "100.0 ms"],
            ),
            (
                ServiceError::Overloaded {
                    queue_depth: 48,
                    priority: Priority::Batch,
                },
                vec!["overloaded", "batch", "48"],
            ),
            (
                ServiceError::RetryExhausted {
                    attempts: 3,
                    last: CaqrError::Timeout {
                        kernel: "factor",
                        launch_index: 7,
                        deadline_us: 1000,
                    },
                },
                vec!["retry budget exhausted", "3", "factor"],
            ),
            (
                ServiceError::WorkerLost { worker: Some(2) },
                vec!["worker 2", "died"],
            ),
            (
                ServiceError::WorkerLost { worker: None },
                vec!["died", "channel closed"],
            ),
            (ServiceError::ShuttingDown, vec!["shut down"]),
        ];
        for (e, needles) in cases {
            let s = e.to_string();
            for needle in needles {
                assert!(
                    s.contains(needle),
                    "{e:?} renders {s:?}, missing {needle:?}"
                );
            }
        }
    }

    #[test]
    fn source_chains_through_to_the_caqr_error() {
        let inner = CaqrError::ChecksumMismatch {
            stage: "apply",
            panel: 1,
            col: 9,
        };
        let e = ServiceError::Caqr(inner.clone());
        let src = e.source().expect("Caqr carries a source");
        assert!(src.to_string().contains("checksum mismatch"));
        let e = ServiceError::RetryExhausted {
            attempts: 2,
            last: inner,
        };
        let src = e.source().expect("RetryExhausted carries a source");
        assert!(src.to_string().contains("checksum mismatch"));
        for e in [
            ServiceError::DeadlineExpired {
                queued: Duration::ZERO,
                deadline: Duration::ZERO,
            },
            ServiceError::Overloaded {
                queue_depth: 0,
                priority: Priority::Standard,
            },
            ServiceError::WorkerLost { worker: None },
            ServiceError::ShuttingDown,
        ] {
            assert!(e.source().is_none(), "{e:?} must not invent a source");
        }
    }

    #[test]
    fn every_submit_error_variant_displays_and_debugs() {
        let full = SubmitError::Full(spec());
        assert!(full.to_string().contains("queue full"));
        assert_eq!(format!("{full:?}"), "SubmitError::Full");
        let quota = SubmitError::QuotaExceeded {
            spec: spec(),
            queued: 9,
            quota: 8,
        };
        let s = quota.to_string();
        assert!(
            s.contains("quota") && s.contains('9') && s.contains('8'),
            "{s}"
        );
        assert!(format!("{quota:?}").contains("QuotaExceeded"));
        let down = SubmitError::Shutdown(spec());
        assert!(down.to_string().contains("shutting down"));
        assert_eq!(format!("{down:?}"), "SubmitError::Shutdown");
        // All three satisfy std::error::Error (source defaults to None).
        for e in [full, quota, down] {
            let e: &dyn std::error::Error = &e;
            assert!(e.source().is_none());
        }
    }
}
