//! The admission queue, supervised worker pool, and dispatch loop: bounded
//! backpressured admission with per-tenant quotas, priority-aware batch
//! gathering, the overload circuit breaker, the fault-isolating dispatch
//! path (batch carve-out + bounded solo retry), and worker supervision
//! that guarantees every admitted [`Ticket`] resolves.

use super::batch::{factor_many_resilient, factor_many_with_stats, fuse_key, FuseKey};
use super::ledger::ServiceLedger;
use super::resilience::TenantQuota;
use super::{
    lock, logical_launches, run_solo_resilient, service_retryable, JobSpec, Priority,
    ServiceConfig, ServiceError, SubmitError,
};
use crate::multicore::{CpuCaqr, CpuCaqrOptions};
use dense::matrix::Matrix;
use dense::scalar::Scalar;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What the service hands back for one job.
pub struct JobOutcome<T: Scalar> {
    /// The factorization, or the typed failure.
    pub result: Result<CpuCaqr<T>, ServiceError>,
    /// Tenant the job was charged to.
    pub tenant: String,
    /// Priority class the job ran under.
    pub priority: Priority,
    /// Time spent queued before dispatch.
    pub queue_wait: Duration,
    /// Submission-to-completion latency.
    pub latency: Duration,
    /// Size of the fused group the job ran in (1 = solo).
    pub fused_with: usize,
    /// The job completed after its deadline (still served).
    pub missed_deadline: bool,
    /// Solo retries spent on the job after a batch-path fault (0 on the
    /// fault-free path).
    pub retries: u32,
}

/// Claim check for a submitted job.
pub struct Ticket<T: Scalar> {
    pub(super) rx: mpsc::Receiver<JobOutcome<T>>,
}

impl<T: Scalar> Ticket<T> {
    /// Block until the job resolves. Never hangs: every admitted job is
    /// guaranteed an outcome — served, shed, aborted at shutdown, or
    /// resolved by the supervisor when its worker died. A closed channel
    /// (every sender dropped without a message — a structurally lost
    /// worker) surfaces as [`ServiceError::WorkerLost`].
    pub fn wait(self) -> Result<JobOutcome<T>, ServiceError> {
        self.rx
            .recv()
            .map_err(|_| ServiceError::WorkerLost { worker: None })
    }
}

pub(super) struct QueuedJob<T: Scalar> {
    pub(super) spec: JobSpec<T>,
    pub(super) key: Option<FuseKey>,
    pub(super) seq: u64,
    pub(super) submitted: Instant,
    pub(super) tx: mpsc::Sender<JobOutcome<T>>,
}

pub(super) struct QueueState<T: Scalar> {
    pub(super) q: VecDeque<QueuedJob<T>>,
    seq: u64,
    shutdown: bool,
    /// Jobs currently queued per tenant, for quota admission.
    tenant_queued: BTreeMap<String, usize>,
}

/// One job's dispatch outcome before accounting: the result plus the solo
/// retries spent on it, the logical launches those retries cost, and the
/// seconds the retry loop (backoff included) took.
type Resolved<T> = (Result<CpuCaqr<T>, ServiceError>, u32, u64, f64);

/// One dispatched job's supervision record: enough to resolve its ticket
/// with [`ServiceError::WorkerLost`] if the serving worker dies before
/// sending an outcome. Posted to the worker's flight board at dispatch,
/// marked resolved when the outcome is sent, reaped by the supervisor.
struct Flight<T: Scalar> {
    tx: Mutex<mpsc::Sender<JobOutcome<T>>>,
    tenant: String,
    priority: Priority,
    submitted: Instant,
    deadline: Option<Duration>,
    resolved: AtomicBool,
}

/// The overload circuit breaker's state (policy in
/// [`super::ShedPolicy`]): open/closed, plus the sliding window of
/// deadline-carrying completions the miss-rate trigger watches.
struct Breaker {
    open: bool,
    window: VecDeque<bool>,
}

pub(super) struct Shared<T: Scalar> {
    pub(super) state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    pub(super) ledger: Mutex<ServiceLedger>,
    capacity: usize,
    max_batch: usize,
    cfg: ServiceConfig,
    breaker: Mutex<Breaker>,
    /// Per-worker flight boards (indexed by worker id).
    flights: Vec<Mutex<Vec<Arc<Flight<T>>>>>,
    /// Batches dispatched, for the injected worker-panic cadence.
    batch_ordinal: AtomicU64,
}

impl<T: Scalar> Shared<T> {
    pub(super) fn new(cfg: &ServiceConfig) -> Shared<T> {
        Shared {
            state: Mutex::new(QueueState {
                q: VecDeque::new(),
                seq: 0,
                shutdown: false,
                tenant_queued: BTreeMap::new(),
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            ledger: Mutex::new(ServiceLedger::default()),
            capacity: cfg.queue_capacity.max(1),
            max_batch: cfg.max_batch.max(1),
            breaker: Mutex::new(Breaker {
                open: false,
                window: VecDeque::new(),
            }),
            flights: (0..cfg.workers.max(1))
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            batch_ordinal: AtomicU64::new(0),
            cfg: cfg.clone(),
        }
    }

    pub(super) fn push(&self, st: &mut QueueState<T>, spec: JobSpec<T>) -> Ticket<T> {
        let (tx, rx) = mpsc::channel();
        let key = fuse_key(&spec.a, &spec.opts);
        lock(&self.ledger).charge(&spec.tenant, |c| c.jobs_submitted += 1);
        *st.tenant_queued.entry(spec.tenant.clone()).or_insert(0) += 1;
        st.q.push_back(QueuedJob {
            spec,
            key,
            seq: st.seq,
            submitted: Instant::now(),
            tx,
        });
        st.seq += 1;
        self.not_empty.notify_one();
        Ticket { rx }
    }

    /// The tenant's current admission cap, if any ([`TenantQuota`]).
    fn quota_cap(&self, st: &QueueState<T>, tenant: &str) -> Option<usize> {
        match self.cfg.quota {
            TenantQuota::Unlimited => None,
            TenantQuota::MaxQueued(k) => Some(k),
            TenantQuota::FairShare { min } => {
                let mut active = st.tenant_queued.values().filter(|&&v| v > 0).count();
                if st.tenant_queued.get(tenant).is_none_or(|&v| v == 0) {
                    active += 1;
                }
                Some((self.capacity / active.max(1)).max(min))
            }
        }
    }

    /// Quota admission check: fail-fast, never blocks — a tenant at its
    /// cap cannot park on the backpressure path and starve the rest.
    #[allow(clippy::result_large_err)] // the Err hands the JobSpec back
    fn check_quota(
        &self,
        st: &QueueState<T>,
        spec: JobSpec<T>,
    ) -> Result<JobSpec<T>, SubmitError<T>> {
        if let Some(cap) = self.quota_cap(st, &spec.tenant) {
            let queued = st.tenant_queued.get(&spec.tenant).copied().unwrap_or(0);
            if queued >= cap {
                return Err(SubmitError::QuotaExceeded {
                    spec,
                    queued,
                    quota: cap,
                });
            }
        }
        Ok(spec)
    }

    /// Non-blocking admission: reject with the job when full, over quota,
    /// or shut down.
    #[allow(clippy::result_large_err)] // the Err hands the JobSpec back
    pub(super) fn try_push(&self, spec: JobSpec<T>) -> Result<Ticket<T>, SubmitError<T>> {
        let mut st = lock(&self.state);
        if st.shutdown {
            return Err(SubmitError::Shutdown(spec));
        }
        let spec = self.check_quota(&st, spec)?;
        if st.q.len() >= self.capacity {
            return Err(SubmitError::Full(spec));
        }
        Ok(self.push(&mut st, spec))
    }

    /// Blocking admission: wait for queue space (backpressure). Quota
    /// violations still fail fast instead of blocking.
    #[allow(clippy::result_large_err)] // the Err hands the JobSpec back
    pub(super) fn push_blocking(&self, spec: JobSpec<T>) -> Result<Ticket<T>, SubmitError<T>> {
        let mut st = lock(&self.state);
        if st.shutdown {
            return Err(SubmitError::Shutdown(spec));
        }
        let spec = self.check_quota(&st, spec)?;
        while st.q.len() >= self.capacity && !st.shutdown {
            st = self
                .not_full
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        if st.shutdown {
            return Err(SubmitError::Shutdown(spec));
        }
        Ok(self.push(&mut st, spec))
    }

    /// Pull the next batch: the best-(priority, admission-order) job leads,
    /// and up to `max_batch - 1` queued jobs of the same shape class ride
    /// along regardless of their own priority — opportunistic fusion makes
    /// them near-free. Returns `None` when shut down and drained.
    pub(super) fn next_batch(&self) -> Option<Vec<QueuedJob<T>>> {
        let mut st = lock(&self.state);
        loop {
            if !st.q.is_empty() {
                break;
            }
            if st.shutdown {
                return None;
            }
            st = self
                .not_empty
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        let lead =
            st.q.iter()
                .enumerate()
                .min_by_key(|(_, j)| (j.spec.priority, j.seq))
                .map(|(i, _)| i)
                .expect("queue verified non-empty");
        let lead_key = st.q[lead].key;
        let mut picks = vec![lead];
        if let Some(key) = lead_key {
            for (i, job) in st.q.iter().enumerate() {
                if picks.len() >= self.max_batch {
                    break;
                }
                if i != lead && job.key == Some(key) {
                    picks.push(i);
                }
            }
        }
        // Preserve admission order within the batch; remove back-to-front
        // so earlier indices stay valid.
        picks.sort_unstable();
        let mut batch: Vec<QueuedJob<T>> = Vec::with_capacity(picks.len());
        for &i in picks.iter().rev() {
            batch.push(st.q.remove(i).expect("picked index in bounds"));
        }
        batch.reverse();
        for job in &batch {
            if let Some(v) = st.tenant_queued.get_mut(&job.spec.tenant) {
                *v = v.saturating_sub(1);
            }
        }
        drop(st);
        self.not_full.notify_all();
        Some(batch)
    }

    /// Serve one batch on worker `worker`: post flights for supervision,
    /// shed expired-deadline and breaker-shed jobs, run the rest through
    /// the (resilient) fused engine with bounded solo retry, account
    /// everything, resolve the tickets, and update the circuit breaker.
    pub(super) fn serve(&self, batch: Vec<QueuedJob<T>>, worker: usize) {
        let dispatch = Instant::now();
        let depth = lock(&self.state).q.len() + batch.len();
        let breaker_open = lock(&self.breaker).open;

        // Post every job to the flight board *before* any work: if this
        // worker dies anywhere past this point, the supervisor resolves
        // the unresolved flights with `WorkerLost` and respawns.
        let mut flights: Vec<Arc<Flight<T>>> = Vec::with_capacity(batch.len());
        {
            let mut board = lock(&self.flights[worker]);
            for job in &batch {
                let fl = Arc::new(Flight {
                    tx: Mutex::new(job.tx.clone()),
                    tenant: job.spec.tenant.clone(),
                    priority: job.spec.priority,
                    submitted: job.submitted,
                    deadline: job.spec.deadline,
                    resolved: AtomicBool::new(false),
                });
                board.push(Arc::clone(&fl));
                flights.push(fl);
            }
        }

        // Injected worker kill (chaos / supervision tests): the panic fires
        // after the flights are posted, so every ticket still resolves.
        if let Some(fp) = &self.cfg.resilience.faults {
            if let Some(every) = fp.worker_panic_every {
                let bo = self.batch_ordinal.fetch_add(1, Ordering::Relaxed);
                if (bo + 1).is_multiple_of(every) {
                    panic!("injected worker panic: batch #{bo}");
                }
            }
        }

        // Shed phase: expired deadlines, then the open breaker (which
        // sheds only `Batch`-class work).
        let mut live: Vec<(QueuedJob<T>, Arc<Flight<T>>)> = Vec::with_capacity(batch.len());
        for (job, fl) in batch.into_iter().zip(flights) {
            let queued = dispatch.duration_since(job.submitted);
            match job.spec.deadline {
                Some(deadline) if queued > deadline => {
                    lock(&self.ledger).charge(&job.spec.tenant, |c| {
                        c.jobs_shed += 1;
                        c.queue_seconds += queued.as_secs_f64();
                    });
                    let _ = job.tx.send(JobOutcome {
                        result: Err(ServiceError::DeadlineExpired { queued, deadline }),
                        tenant: job.spec.tenant,
                        priority: job.spec.priority,
                        queue_wait: queued,
                        latency: queued,
                        fused_with: 1,
                        missed_deadline: true,
                        retries: 0,
                    });
                    fl.resolved.store(true, Ordering::SeqCst);
                }
                _ if breaker_open && job.spec.priority == Priority::Batch => {
                    lock(&self.ledger).charge(&job.spec.tenant, |c| {
                        c.jobs_shed_overload += 1;
                        c.queue_seconds += queued.as_secs_f64();
                    });
                    let _ = job.tx.send(JobOutcome {
                        result: Err(ServiceError::Overloaded {
                            queue_depth: depth,
                            priority: job.spec.priority,
                        }),
                        tenant: job.spec.tenant,
                        priority: job.spec.priority,
                        queue_wait: queued,
                        latency: queued,
                        fused_with: 1,
                        missed_deadline: false,
                        retries: 0,
                    });
                    fl.resolved.store(true, Ordering::SeqCst);
                }
                _ => live.push((job, fl)),
            }
        }
        let mut misses: Vec<bool> = Vec::new();
        if live.is_empty() {
            lock(&self.flights[worker]).retain(|f| !f.resolved.load(Ordering::SeqCst));
            self.update_breaker(&misses);
            return;
        }

        // The engine: plain fused when resilience is off, the verified /
        // fault-injecting engine when it's on.
        let res = &self.cfg.resilience;
        let active = res.active();
        let inputs: Vec<(Matrix<T>, CpuCaqrOptions)> = live
            .iter()
            .map(|(j, _)| (j.spec.a.clone(), j.spec.opts))
            .collect();
        let (results, stats) = if active {
            let drawn: Vec<_> = live
                .iter()
                .map(|(j, _)| res.faults.as_ref().and_then(|fp| fp.draw(j.seq, 0)))
                .collect();
            factor_many_resilient(inputs, &drawn, res.verify_batches, &res.recovery)
        } else {
            factor_many_with_stats(inputs)
        };

        // Bounded solo retry with exponential backoff for members that
        // failed retryably (carved out of a fused group, or a solo fault).
        let finals: Vec<Resolved<T>> = live
            .iter()
            .zip(results)
            .map(|((job, _), result)| match result {
                Ok(f) => (Ok(f), 0, 0, 0.0),
                Err(e) if active && res.retry.max_retries > 0 && service_retryable(&e) => {
                    let t0 = Instant::now();
                    let mut attempts = 0u32;
                    let mut last = e;
                    let (outcome, launches) = loop {
                        if attempts >= res.retry.max_retries {
                            break (Err(ServiceError::RetryExhausted { attempts, last }), 0);
                        }
                        attempts += 1;
                        std::thread::sleep(res.retry.backoff_for(attempts));
                        let fault = res
                            .faults
                            .as_ref()
                            .and_then(|fp| fp.draw(job.seq, attempts));
                        match run_solo_resilient(
                            job.spec.a.clone(),
                            job.spec.opts,
                            fault,
                            &res.recovery,
                        ) {
                            Ok((f, _)) => {
                                let l = logical_launches(&f) as u64;
                                break (Ok(f), l);
                            }
                            Err(e2) if service_retryable(&e2) => last = e2,
                            Err(e2) => break (Err(ServiceError::Caqr(e2)), 0),
                        }
                    };
                    (outcome, attempts, launches, t0.elapsed().as_secs_f64())
                }
                Err(e) => (Err(ServiceError::Caqr(e)), 0, 0, 0.0),
            })
            .collect();
        let service_secs = dispatch.elapsed().as_secs_f64();
        let fused_with = if stats.fused_jobs > 0 {
            stats.fused_jobs
        } else {
            1
        };

        // Accounting + ticket resolution. Fault-free launches land in
        // `launches`; work done by the retry path lands in the dedicated
        // `retry_*` counters so the two costs stay separable (and both
        // reconcile per tenant against the global row).
        {
            let mut ledger = lock(&self.ledger);
            ledger.batches += 1;
            ledger.fused_launches += stats.fused_launches as u64;
            for ((job, fl), (result, retries, retry_launches, retry_secs)) in
                live.into_iter().zip(finals)
            {
                let queued = dispatch.duration_since(job.submitted);
                let latency = job.submitted.elapsed();
                let missed = job.spec.deadline.is_some_and(|d| latency > d);
                let in_fused = stats.fused_jobs > 0 && job.key.is_some();
                ledger.charge(&job.spec.tenant, |c| {
                    c.queue_seconds += queued.as_secs_f64();
                    c.service_seconds += service_secs;
                    if missed {
                        c.deadline_misses += 1;
                    }
                    if in_fused {
                        c.fused_jobs += 1;
                    } else {
                        c.solo_jobs += 1;
                    }
                    if retries > 0 {
                        c.retry_jobs += 1;
                        c.retry_attempts += retries as u64;
                        c.retry_launches += retry_launches;
                        c.retry_seconds += retry_secs;
                    }
                    match &result {
                        Ok(f) => {
                            c.jobs_completed += 1;
                            c.panels += f.panels.len() as u64;
                            if retries == 0 {
                                c.launches += logical_launches(f) as u64;
                            }
                            let (m, n) = f.a.shape();
                            c.flops += dense::geqrf_flops(m, n);
                        }
                        Err(_) => c.jobs_failed += 1,
                    }
                });
                if job.spec.deadline.is_some() {
                    misses.push(missed);
                }
                let _ = job.tx.send(JobOutcome {
                    result,
                    tenant: job.spec.tenant,
                    priority: job.spec.priority,
                    queue_wait: queued,
                    latency,
                    fused_with: if in_fused { fused_with } else { 1 },
                    missed_deadline: missed,
                    retries,
                });
                fl.resolved.store(true, Ordering::SeqCst);
            }
        }
        lock(&self.flights[worker]).retain(|f| !f.resolved.load(Ordering::SeqCst));
        self.update_breaker(&misses);
    }

    /// Advance the circuit breaker (DESIGN.md §15): feed the sliding
    /// deadline-miss window, open on depth or miss-rate, close on drained
    /// depth — with the `open_depth`/`close_depth` hysteresis gap.
    fn update_breaker(&self, misses: &[bool]) {
        let shed = &self.cfg.shed;
        if !shed.enabled() {
            return;
        }
        let depth = lock(&self.state).q.len();
        let (mut opened, mut closed) = (0u64, 0u64);
        {
            let mut br = lock(&self.breaker);
            if shed.miss_window > 0 {
                for &m in misses {
                    br.window.push_back(m);
                    while br.window.len() > shed.miss_window {
                        br.window.pop_front();
                    }
                }
            }
            if br.open {
                if depth <= shed.close_depth {
                    br.open = false;
                    br.window.clear();
                    closed = 1;
                }
            } else {
                let miss_trigger = shed.miss_window > 0
                    && br.window.len() >= shed.miss_window
                    && br.window.iter().filter(|&&m| m).count() as f64
                        >= shed.open_miss_rate * br.window.len() as f64;
                if depth >= shed.open_depth || miss_trigger {
                    br.open = true;
                    br.window.clear();
                    opened = 1;
                }
            }
        }
        if opened + closed > 0 {
            let mut l = lock(&self.ledger);
            l.breaker_opens += opened;
            l.breaker_closes += closed;
        }
    }

    /// Supervisor path: worker `worker` died mid-serve. Resolve every
    /// still-unresolved flight on its board with
    /// [`ServiceError::WorkerLost`] and account the loss; the caller then
    /// re-enters the serve loop (the respawn).
    fn reap(&self, worker: usize) {
        // Count the death before resolving its flights: a waiter woken by
        // a `WorkerLost` outcome must already see the supervision counters.
        {
            let mut l = lock(&self.ledger);
            l.worker_panics += 1;
            l.workers_respawned += 1;
        }
        let dead: Vec<Arc<Flight<T>>> = lock(&self.flights[worker]).drain(..).collect();
        for fl in dead {
            if fl.resolved.swap(true, Ordering::SeqCst) {
                continue;
            }
            let waited = fl.submitted.elapsed();
            let missed = fl.deadline.is_some_and(|d| waited > d);
            lock(&self.ledger).charge(&fl.tenant, |c| {
                c.jobs_lost += 1;
                c.queue_seconds += waited.as_secs_f64();
            });
            let _ = lock(&fl.tx).send(JobOutcome {
                result: Err(ServiceError::WorkerLost {
                    worker: Some(worker),
                }),
                tenant: fl.tenant.clone(),
                priority: fl.priority,
                queue_wait: waited,
                latency: waited,
                fused_with: 1,
                missed_deadline: missed,
                retries: 0,
            });
        }
    }

    /// The supervised worker body: pull-and-serve until shutdown, with the
    /// whole loop under `catch_unwind`. A panic (an injected worker kill,
    /// a bug in a serve path) reaps the worker's flights and re-enters the
    /// loop — the pool never shrinks and no ticket is ever orphaned.
    fn worker_loop(&self, worker: usize) {
        loop {
            let ran = catch_unwind(AssertUnwindSafe(|| {
                while let Some(batch) = self.next_batch() {
                    self.serve(batch, worker);
                }
            }));
            match ran {
                Ok(()) => break,
                Err(_) => self.reap(worker),
            }
        }
    }
}

/// The batched multi-tenant QR service: supervised worker threads over a
/// bounded admission queue, dispatching shape-fused [`factor_many`]
/// batches with optional service-tier fault tolerance (DESIGN.md §15).
///
/// ```no_run
/// use caqr::service::{JobSpec, Service, ServiceConfig};
/// use caqr::CpuCaqrOptions;
///
/// let svc = Service::<f64>::start(ServiceConfig::default());
/// let a = dense::generate::uniform::<f64>(4096, 16, 1);
/// let ticket = svc
///     .submit(JobSpec::new(a, CpuCaqrOptions::tuned_for_width(16)).tenant("alice"))
///     .unwrap_or_else(|_| panic!("service accepting"));
/// let outcome = ticket.wait().expect("job served");
/// let f = outcome.result.expect("factorization succeeded");
/// println!("R is {}x{}", f.r().rows(), f.r().cols());
/// svc.shutdown();
/// ```
///
/// [`factor_many`]: super::factor_many
pub struct Service<T: Scalar> {
    shared: Arc<Shared<T>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl<T: Scalar> Service<T> {
    /// Start the worker pool.
    pub fn start(cfg: ServiceConfig) -> Service<T> {
        let shared = Arc::new(Shared::new(&cfg));
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("caqr-service-{i}"))
                    .spawn(move || shared.worker_loop(i))
                    .expect("spawn service worker thread")
            })
            .collect();
        Service { shared, workers }
    }

    /// Submit a job, blocking while the queue is at capacity
    /// (backpressure). Fails fast on quota violations and once the
    /// service is shutting down.
    // A rejected submit hands the whole `JobSpec` (matrix included) back to
    // the caller for retry — the large `Err` is the point, not an accident.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, spec: JobSpec<T>) -> Result<Ticket<T>, SubmitError<T>> {
        self.shared.push_blocking(spec)
    }

    /// Submit without blocking: a full queue returns the job immediately.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(&self, spec: JobSpec<T>) -> Result<Ticket<T>, SubmitError<T>> {
        self.shared.try_push(spec)
    }

    /// Snapshot the per-tenant ledger.
    pub fn ledger(&self) -> ServiceLedger {
        lock(&self.shared.ledger).clone()
    }

    /// Graceful shutdown: stop admitting, serve everything queued, join
    /// the workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Immediate shutdown: stop admitting, **drain** still-queued jobs —
    /// resolving each ticket with [`ServiceError::ShuttingDown`], in
    /// admission order — and join the workers (in-flight batches finish).
    pub fn shutdown_now(mut self) {
        let drained: Vec<QueuedJob<T>> = {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            st.tenant_queued.clear();
            st.q.drain(..).collect()
        };
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for job in drained {
            let queued = job.submitted.elapsed();
            lock(&self.shared.ledger).charge(&job.spec.tenant, |c| {
                c.jobs_aborted += 1;
                c.queue_seconds += queued.as_secs_f64();
            });
            let _ = job.tx.send(JobOutcome {
                result: Err(ServiceError::ShuttingDown),
                tenant: job.spec.tenant,
                priority: job.spec.priority,
                queue_wait: queued,
                latency: queued,
                fused_with: 1,
                missed_deadline: false,
                retries: 0,
            });
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn shutdown_inner(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl<T: Scalar> Drop for Service<T> {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::TreeShape;
    use crate::multicore::caqr_cpu;
    use crate::service::{ResilienceConfig, RetryBudget, ServiceFaultPlan, ShedPolicy};
    use gpu_sim::FaultPlan;

    fn opts(h: usize, w: usize) -> CpuCaqrOptions {
        CpuCaqrOptions {
            tile_rows: h,
            panel_width: w,
            tree: TreeShape::DeviceArity,
            verify_checksums: false,
        }
    }

    #[test]
    fn service_end_to_end_matches_caqr_cpu_and_reconciles() {
        let svc = Service::<f64>::start(ServiceConfig {
            workers: 2,
            queue_capacity: 32,
            max_batch: 4,
            ..ServiceConfig::default()
        });
        let tenants = ["alpha", "beta"];
        let mut expected = Vec::new();
        let mut tickets = Vec::new();
        for s in 0..10u64 {
            let a = dense::generate::uniform::<f64>(240, 12, 20 + s);
            let o = opts(48, 12);
            expected.push(caqr_cpu(a.clone(), o).unwrap().a);
            let spec = JobSpec::new(a, o)
                .tenant(tenants[(s % 2) as usize])
                .priority(Priority::ALL[(s % 3) as usize]);
            tickets.push(svc.submit(spec).unwrap_or_else(|_| panic!("accepting")));
        }
        for (ticket, want) in tickets.into_iter().zip(expected) {
            let out = ticket.wait().expect("served");
            assert_eq!(out.result.expect("factored").a, want);
        }
        let ledger = svc.ledger();
        assert_eq!(ledger.global.jobs_submitted, 10);
        assert_eq!(ledger.global.jobs_completed, 10);
        assert_eq!(ledger.global.fused_jobs + ledger.global.solo_jobs, 10);
        assert_eq!(ledger.tenants.len(), 2);
        ledger.reconcile().expect("split accounting holds");
        svc.shutdown();
    }

    #[test]
    fn expired_deadline_jobs_are_shed_with_a_typed_error() {
        let svc = Service::<f64>::start(ServiceConfig::default());
        let a = dense::generate::uniform::<f64>(200, 8, 31);
        let ticket = svc
            .submit(JobSpec::new(a, opts(32, 8)).deadline(Duration::ZERO))
            .unwrap_or_else(|_| panic!("accepting"));
        let out = ticket.wait().expect("resolved");
        match out.result {
            Err(ServiceError::DeadlineExpired { deadline, .. }) => {
                assert_eq!(deadline, Duration::ZERO)
            }
            other => panic!("expected shed, got {:?}", other.map(|f| f.a.shape())),
        }
        let ledger = svc.ledger();
        assert_eq!(ledger.global.jobs_shed, 1);
        ledger.reconcile().expect("shed accounting reconciles");
        svc.shutdown();
    }

    #[test]
    fn priority_leads_and_same_shape_followers_fuse() {
        // Drive the picker directly (no workers) so the batch composition
        // is deterministic: a later Interactive job must lead, and only
        // same-shape-class jobs ride along, capped by max_batch.
        let shared: Shared<f64> = Shared::new(&ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            max_batch: 3,
            ..ServiceConfig::default()
        });
        let mk = |m: usize, p: Priority| {
            JobSpec::new(dense::generate::uniform::<f64>(m, 8, m as u64), opts(32, 8)).priority(p)
        };
        {
            let mut st = lock(&shared.state);
            for spec in [
                mk(200, Priority::Batch),
                mk(300, Priority::Batch),
                mk(300, Priority::Interactive),
                mk(300, Priority::Batch),
                mk(300, Priority::Batch),
            ] {
                let _ = shared.push(&mut st, spec);
            }
        }
        let batch = shared.next_batch().expect("queue non-empty");
        assert_eq!(batch.len(), 3, "max_batch caps the gather");
        assert!(batch
            .iter()
            .any(|j| j.spec.priority == Priority::Interactive));
        assert!(batch.iter().all(|j| j.spec.a.rows() == 300));
        // The 200-row job and one surplus 300-row job remain queued.
        assert_eq!(lock(&shared.state).q.len(), 2);
    }

    #[test]
    fn try_submit_backpressure_returns_the_job() {
        let shared: Shared<f64> = Shared::new(&ServiceConfig {
            workers: 1,
            queue_capacity: 2,
            max_batch: 8,
            ..ServiceConfig::default()
        });
        let mk = || JobSpec::new(dense::generate::uniform::<f64>(64, 4, 1), opts(16, 4));
        assert!(shared.try_push(mk()).is_ok());
        assert!(shared.try_push(mk()).is_ok());
        match shared.try_push(mk()) {
            Err(SubmitError::Full(spec)) => assert_eq!(spec.a.shape(), (64, 4)),
            other => panic!("expected Full, got {:?}", other.err()),
        }
    }

    #[test]
    fn dead_workers_resolve_tickets_and_the_pool_survives() {
        // Every batch kills its worker: each ticket must still resolve
        // (with WorkerLost), the supervisor must respawn every time, and
        // the service must keep accepting work instead of deadlocking.
        let cfg = ServiceConfig {
            workers: 1,
            resilience: ResilienceConfig {
                faults: Some(ServiceFaultPlan::new(FaultPlan::explicit([])).worker_panic_every(1)),
                ..ResilienceConfig::default()
            },
            ..ServiceConfig::default()
        };
        let svc = Service::<f64>::start(cfg);
        for s in 0..3u64 {
            let a = dense::generate::uniform::<f64>(96, 4, s);
            let ticket = svc
                .submit(JobSpec::new(a, opts(16, 4)).tenant("t"))
                .unwrap_or_else(|_| panic!("accepting"));
            let out = ticket.wait().expect("supervisor resolves the ticket");
            match out.result {
                Err(ServiceError::WorkerLost { worker }) => assert_eq!(worker, Some(0)),
                other => panic!("expected WorkerLost, got {:?}", other.map(|f| f.a.shape())),
            }
        }
        let ledger = svc.ledger();
        assert_eq!(ledger.global.jobs_lost, 3);
        assert!(ledger.worker_panics >= 3);
        assert_eq!(ledger.worker_panics, ledger.workers_respawned);
        ledger.reconcile().expect("loss accounting reconciles");
        svc.shutdown();
    }

    #[test]
    fn shutdown_now_drains_queued_jobs_in_admission_order() {
        // No worker threads: build the Service by hand so queued jobs are
        // guaranteed to still be queued when shutdown_now runs.
        let shared: Arc<Shared<f64>> = Arc::new(Shared::new(&ServiceConfig::default()));
        let mut tickets = Vec::new();
        {
            let mut st = lock(&shared.state);
            for s in 0..4u64 {
                let spec = JobSpec::new(dense::generate::uniform::<f64>(64, 4, s), opts(16, 4))
                    .tenant(format!("t{}", s % 2));
                tickets.push(shared.push(&mut st, spec));
            }
        }
        let svc = Service {
            shared: Arc::clone(&shared),
            workers: Vec::new(),
        };
        svc.shutdown_now();
        for ticket in tickets {
            match ticket.wait().expect("drained tickets resolve") {
                JobOutcome {
                    result: Err(ServiceError::ShuttingDown),
                    ..
                } => {}
                out => panic!(
                    "expected ShuttingDown, got {:?}",
                    out.result.map(|f| f.a.shape())
                ),
            }
        }
        let ledger = lock(&shared.ledger).clone();
        assert_eq!(ledger.global.jobs_aborted, 4);
        ledger.reconcile().expect("abort accounting reconciles");
    }

    #[test]
    fn breaker_opens_sheds_batch_class_and_closes_with_hysteresis() {
        // Drive the dispatch loop by hand (no worker threads) so breaker
        // transitions are deterministic: distinct shapes mean one job per
        // batch, depth crosses open_depth=2, and only Batch class is shed.
        let shared: Shared<f64> = Shared::new(&ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            max_batch: 8,
            shed: ShedPolicy {
                open_depth: 2,
                close_depth: 0,
                miss_window: 0,
                open_miss_rate: 1.1,
            },
            ..ServiceConfig::default()
        });
        let mut tickets = Vec::new();
        {
            let mut st = lock(&shared.state);
            for (i, p) in [
                Priority::Interactive,
                Priority::Interactive,
                Priority::Batch,
                Priority::Interactive,
            ]
            .into_iter()
            .enumerate()
            {
                let m = 64 + 16 * i; // distinct shapes: no fusion
                let spec =
                    JobSpec::new(dense::generate::uniform::<f64>(m, 4, i as u64), opts(16, 4))
                        .priority(p);
                tickets.push(shared.push(&mut st, spec));
            }
        }
        // Serve everything; after the first batch (depth 3 >= 2) the
        // breaker opens, shedding the Batch job at its dispatch.
        while let Some(batch) = {
            let empty = lock(&shared.state).q.is_empty();
            if empty {
                None
            } else {
                shared.next_batch()
            }
        } {
            shared.serve(batch, 0);
        }
        let mut shed = 0;
        let mut served = 0;
        for t in tickets {
            match t.wait().expect("resolved").result {
                Err(ServiceError::Overloaded { priority, .. }) => {
                    assert_eq!(priority, Priority::Batch);
                    shed += 1;
                }
                Ok(_) => served += 1,
                other => panic!("unexpected outcome {:?}", other.err()),
            }
        }
        assert_eq!(shed, 1, "exactly the Batch job is shed");
        assert_eq!(served, 3, "Interactive jobs ride through the open breaker");
        let ledger = lock(&shared.ledger).clone();
        assert_eq!(ledger.global.jobs_shed_overload, 1);
        assert_eq!(ledger.breaker_opens, 1);
        assert_eq!(ledger.breaker_closes, 1, "drained depth closes the breaker");
        ledger.reconcile().expect("shed accounting reconciles");
    }

    #[test]
    fn tenant_quotas_reject_without_blocking() {
        let shared: Shared<f64> = Shared::new(&ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            max_batch: 8,
            quota: TenantQuota::MaxQueued(2),
            ..ServiceConfig::default()
        });
        let mk = |t: &str| {
            JobSpec::new(dense::generate::uniform::<f64>(64, 4, 1), opts(16, 4)).tenant(t)
        };
        assert!(shared.push_blocking(mk("a")).is_ok());
        assert!(shared.push_blocking(mk("a")).is_ok());
        match shared.push_blocking(mk("a")) {
            Err(SubmitError::QuotaExceeded { queued, quota, .. }) => {
                assert_eq!((queued, quota), (2, 2));
            }
            other => panic!("expected QuotaExceeded, got {:?}", other.err()),
        }
        // Another tenant is unaffected.
        assert!(shared.push_blocking(mk("b")).is_ok());

        // Fair share: the cap tightens as tenants contend.
        let fair: Shared<f64> = Shared::new(&ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            max_batch: 8,
            quota: TenantQuota::FairShare { min: 1 },
            ..ServiceConfig::default()
        });
        for _ in 0..4 {
            assert!(fair.push_blocking(mk("a")).is_ok(), "solo tenant gets 8/1");
        }
        assert!(
            fair.push_blocking(mk("b")).is_ok(),
            "b activates: cap 8/2=4"
        );
        match fair.push_blocking(mk("a")) {
            Err(SubmitError::QuotaExceeded { queued, quota, .. }) => {
                assert_eq!((queued, quota), (4, 4));
            }
            other => panic!("expected QuotaExceeded, got {:?}", other.err()),
        }
    }

    #[test]
    fn chaotic_service_resolves_everything_bitwise_and_reconciles() {
        // A miniature chaos soak: seeded SDC/hang/launch/host-panic faults
        // plus periodic worker kills, verified batches, bounded retry.
        // Every ticket must resolve; every success must be bit-identical
        // to standalone caqr_cpu; the ledger must reconcile.
        let cfg = ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 4,
            resilience: ResilienceConfig {
                verify_batches: true,
                faults: Some(
                    ServiceFaultPlan::new(FaultPlan::seeded_service_mix(7, 0.10, 0.10, 0.05, 0.05))
                        .worker_panic_every(5),
                ),
                retry: RetryBudget {
                    max_retries: 3,
                    backoff: Duration::from_micros(100),
                    max_backoff: Duration::from_millis(1),
                },
                ..ResilienceConfig::default()
            },
            ..ServiceConfig::default()
        };
        let svc = Service::<f64>::start(cfg);
        let mut want = Vec::new();
        let mut tickets = Vec::new();
        for s in 0..24u64 {
            let (m, w) = if s % 3 == 0 { (180, 8) } else { (240, 12) };
            let o = opts(4 * w, w);
            let a = dense::generate::uniform::<f64>(m, w, 500 + s);
            want.push(caqr_cpu(a.clone(), o).unwrap().a);
            let spec = JobSpec::new(a, o).tenant(if s % 2 == 0 { "even" } else { "odd" });
            tickets.push(svc.submit(spec).unwrap_or_else(|_| panic!("accepting")));
        }
        let mut completed = 0;
        let mut lost = 0;
        for (ticket, want) in tickets.into_iter().zip(want) {
            let out = ticket.wait().expect("every ticket resolves");
            match out.result {
                Ok(f) => {
                    assert_eq!(f.a, want, "recovered output must stay bitwise");
                    completed += 1;
                }
                Err(ServiceError::WorkerLost { .. }) => lost += 1,
                Err(ServiceError::Caqr(e)) => {
                    panic!("typed errors in chaos should be retried or terminal-by-design: {e}")
                }
                Err(ServiceError::RetryExhausted { .. }) => {}
                Err(e) => panic!("unexpected outcome {e}"),
            }
        }
        assert!(completed > 0, "some jobs must complete under chaos");
        let ledger = svc.ledger();
        assert_eq!(
            ledger.global.jobs_completed + ledger.global.jobs_failed + ledger.global.jobs_lost,
            24
        );
        assert_eq!(ledger.global.jobs_lost, lost);
        ledger.reconcile().expect("chaos accounting reconciles");
        svc.shutdown();
    }
}
