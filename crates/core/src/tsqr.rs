//! TSQR — Tall-Skinny QR (Section II-B / Figure 2) — and the panel
//! factor/apply drivers shared with the full CAQR.
//!
//! The host-side control flow mirrors the pseudocode of Figure 4: a
//! `factor` launch over the panel tiles, then one `factor_tree` launch per
//! reduction-tree level. The resulting [`PanelFactor`] holds everything
//! needed to apply `Q`/`Q^T` later: the level-0 `tau`s (the Householder
//! tails stay in the factored matrix) and the per-level [`TreeNode`]s.

use crate::block::{plan_tree, tile_panel, BlockSize, Tile, TreeShape};
use crate::error::CaqrError;
use crate::kernels::{ApplyQtHKernel, ApplyQtTreeKernel, FactorKernel, FactorTreeKernel};
use crate::microkernels::ReductionStrategy;
use dense::matrix::Matrix;
use dense::scalar::Scalar;
use dense::{DenseError, MatPtr};
use gpu_sim::{Exec, Gpu};
use parking_lot::Mutex;

/// One tile's factorization in compact-WY form: the explicit unit
/// lower-trapezoidal `V`, the upper-triangular `T` of `Q = I - V T V^T`
/// (LAPACK `larft`), and the raw `tau` scalars (kept for the per-reflector
/// reference path and the cost model).
///
/// Storing `V` explicitly — packed contiguously, once per tile at factor
/// time — is the CPU analogue of the paper's strategy-4 pre-transpose: the
/// panel is restructured once so that every one of the many trailing-block
/// applies streams it with unit stride, instead of re-deriving the
/// unit-diagonal/zero structure per reflector on every pass.
#[derive(Clone, Debug)]
pub struct WyTile<T: Scalar> {
    /// Scalar reflector factors.
    pub tau: Vec<T>,
    /// Explicit `rows x k` unit lower-trapezoidal reflector block.
    pub v: Matrix<T>,
    /// `k x k` upper-triangular compact-WY factor.
    pub t: Matrix<T>,
    /// Whether every entry of `v`/`t`/`tau` came out finite. When `false`
    /// (a compact-WY breakdown, e.g. overflow while accumulating `T`), the
    /// apply kernels fall back to the per-reflector `larf` reference path,
    /// which never touches `t`.
    pub healthy: bool,
}

/// One factored reduction-tree group: the stacked `(t*w) x w` Householder
/// factorization (`geqr2` layout) of `t` gathered R-triangles, plus the
/// absolute row offsets the triangles came from.
#[derive(Clone, Debug)]
pub struct TreeNode<T: Scalar> {
    /// Absolute row offsets of the stacked triangles (leader first).
    pub members: Vec<usize>,
    /// The factored stack: R on top, Householder tails below the diagonal.
    /// Block `i >= 1` (rows `[i*w, (i+1)*w)`) is a `w x w` upper-triangular
    /// reflector block; the implicit top block of `V` is exactly `I_w`.
    pub u: Matrix<T>,
    /// Scalar reflector factors.
    pub tau: Vec<T>,
    /// `w x w` upper-triangular compact-WY factor of the stack (precomputed
    /// at factor time so every apply is pure BLAS3).
    pub tmat: Matrix<T>,
    /// Whether `u`/`tmat`/`tau` are all finite; `false` routes applies to
    /// the per-reflector fallback path (see [`WyTile::healthy`]).
    pub healthy: bool,
}

/// The complete TSQR factorization of one panel.
#[derive(Clone, Debug)]
pub struct PanelFactor<T: Scalar> {
    /// Absolute first row of the panel.
    pub row0: usize,
    /// Absolute first column of the panel.
    pub col0: usize,
    /// Panel width (== number of reflectors per tile).
    pub width: usize,
    /// The level-0 tiles.
    pub tiles: Vec<Tile>,
    /// Per-tile compact-WY factors from the level-0 factorization (the
    /// Householder tails also live below the diagonal of each tile in the
    /// factored matrix; the packed copy here is what the apply kernels use).
    pub wy0: Vec<WyTile<T>>,
    /// Reduction-tree levels, bottom-up.
    pub levels: Vec<Vec<TreeNode<T>>>,
    /// Block size used.
    pub bs: BlockSize,
    /// Strategy used (cost model only).
    pub strategy: ReductionStrategy,
}

/// Split the columns `[from, to)` into blocks of width `w` (last may be
/// narrower) — the trailing-matrix column grid.
pub fn col_blocks(from: usize, to: usize, w: usize) -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    let mut c = from;
    while c < to {
        let wc = w.min(to - c);
        v.push((c, wc));
        c += wc;
    }
    v
}

/// TSQR panel factorization on the simulated GPU: factor columns
/// `[col0, col0 + width)` of `a` over rows `[row0, a.rows())` in place.
pub fn factor_panel<T: Scalar>(
    gpu: &Gpu,
    a: &mut Matrix<T>,
    row0: usize,
    col0: usize,
    width: usize,
    bs: BlockSize,
    strategy: ReductionStrategy,
) -> Result<PanelFactor<T>, CaqrError> {
    factor_panel_with_tree(
        gpu,
        a,
        row0,
        col0,
        width,
        bs,
        strategy,
        TreeShape::DeviceArity,
    )
}

/// [`factor_panel`] with an explicit reduction-tree shape (Section II-B's
/// "any tree shape"; used by the tree-shape ablation).
#[allow(clippy::too_many_arguments)]
pub fn factor_panel_with_tree<T: Scalar>(
    gpu: &Gpu,
    a: &mut Matrix<T>,
    row0: usize,
    col0: usize,
    width: usize,
    bs: BlockSize,
    strategy: ReductionStrategy,
    tree: TreeShape,
) -> Result<PanelFactor<T>, CaqrError> {
    factor_panel_with_tree_on(gpu, Exec::Sync, a, row0, col0, width, bs, strategy, tree)
}

/// [`factor_panel_with_tree`] under an explicit [`Exec`] policy. With
/// `Exec::Stream` the factor and tree launches are queued in order on that
/// stream; the arithmetic (and therefore the returned [`PanelFactor`]) is
/// complete when this returns either way — only the modelled timing defers
/// to `Gpu::synchronize`.
#[allow(clippy::too_many_arguments)]
pub fn factor_panel_with_tree_on<T: Scalar>(
    gpu: &Gpu,
    exec: Exec,
    a: &mut Matrix<T>,
    row0: usize,
    col0: usize,
    width: usize,
    bs: BlockSize,
    strategy: ReductionStrategy,
    tree: TreeShape,
) -> Result<PanelFactor<T>, CaqrError> {
    let m = a.rows();
    if row0 >= m || col0 + width > a.cols() || width == 0 {
        return Err(CaqrError::BadShape(format!(
            "panel (row0={row0}, col0={col0}, width={width}) out of {}x{}",
            m,
            a.cols()
        )));
    }
    bs.validate().map_err(CaqrError::BadShape)?;
    let tiles = tile_panel(row0, m - row0, bs.h, bs.w);
    let spec = gpu.spec();

    // Level 0: factor every tile independently.
    let wy_slots: Vec<Mutex<Option<WyTile<T>>>> = tiles.iter().map(|_| Mutex::new(None)).collect();
    {
        let kernel = FactorKernel {
            a: MatPtr::new(a),
            tiles: &tiles,
            col0,
            width,
            strategy,
            spec,
            wy: &wy_slots,
        };
        gpu.launch_on(exec, &kernel)?;
    }
    let wy0: Vec<WyTile<T>> = wy_slots
        .into_iter()
        .map(|m| m.into_inner().expect("factor block did not produce WY"))
        .collect();

    // Reduction tree: one factor_tree launch per level.
    let starts: Vec<usize> = tiles.iter().map(|t| t.start).collect();
    let plan = plan_tree(&starts, tree.arity(bs));
    let mut levels = Vec::with_capacity(plan.levels.len());
    for level_groups in &plan.levels {
        let out: Vec<Mutex<Option<TreeNode<T>>>> =
            level_groups.iter().map(|_| Mutex::new(None)).collect();
        {
            let kernel = FactorTreeKernel {
                a: MatPtr::new(a),
                groups: level_groups,
                col0,
                width,
                strategy,
                spec,
                out: &out,
            };
            gpu.launch_on(exec, &kernel)?;
        }
        let nodes: Vec<TreeNode<T>> = out
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("factor_tree block did not produce a node")
            })
            .collect();
        levels.push(nodes);
    }

    Ok(PanelFactor {
        row0,
        col0,
        width,
        tiles,
        wy0,
        levels,
        bs,
        strategy,
    })
}

impl<T: Scalar> PanelFactor<T> {
    /// One past the last row the panel's tiles cover (== the factored
    /// matrix's row count for a full-height panel).
    pub fn rows_end(&self) -> usize {
        self.tiles
            .last()
            .map(|t| t.start + t.rows)
            .unwrap_or(self.row0)
    }

    /// Whether every cached compact-WY factor (per-tile and per-tree-node)
    /// came out finite. The recovery executor treats `false` as a detected
    /// factor-task fault: the packed factors are what every later apply
    /// consumes, so a non-finite `T`/`V` there corrupts everything
    /// downstream of this panel.
    pub fn is_healthy(&self) -> bool {
        self.wy0.iter().all(|wy| wy.healthy)
            && self
                .levels
                .iter()
                .all(|nodes| nodes.iter().all(|n| n.healthy))
    }
}

/// Apply the panel's `Q^T` (`transpose == true`, reflectors in factorization
/// order) or `Q` (reverse order) to the column blocks `cols` of the matrix
/// behind `c`. The panel's reflectors come from the packed compact-WY
/// factors cached in `pf` — the factored matrix itself is no longer read.
///
/// # Safety-by-contract
/// `cols` must be disjoint column blocks of `c`.
pub fn apply_panel_ptr<T: Scalar>(
    gpu: &Gpu,
    c: MatPtr<T>,
    pf: &PanelFactor<T>,
    cols: &[(usize, usize)],
    transpose: bool,
) -> Result<(), CaqrError> {
    apply_panel_ptr_on(gpu, Exec::Sync, c, pf, cols, transpose)
}

/// [`apply_panel_ptr`] under an explicit [`Exec`] policy (the apply chain —
/// horizontal kernel plus one kernel per tree level — is queued in order on
/// the stream when `Exec::Stream`).
pub fn apply_panel_ptr_on<T: Scalar>(
    gpu: &Gpu,
    exec: Exec,
    c: MatPtr<T>,
    pf: &PanelFactor<T>,
    cols: &[(usize, usize)],
    transpose: bool,
) -> Result<(), CaqrError> {
    if cols.is_empty() {
        return Ok(());
    }
    let spec = gpu.spec();
    let horizontal = |gpu: &Gpu| -> Result<(), CaqrError> {
        let kernel = ApplyQtHKernel {
            c,
            tiles: &pf.tiles,
            width: pf.width,
            wy: &pf.wy0,
            col_blocks: cols,
            transpose,
            strategy: pf.strategy,
            spec,
        };
        gpu.launch_on(exec, &kernel)?;
        Ok(())
    };
    let tree_level = |gpu: &Gpu, nodes: &[TreeNode<T>]| -> Result<(), CaqrError> {
        let kernel = ApplyQtTreeKernel {
            c,
            nodes,
            width: pf.width,
            col_blocks: cols,
            transpose,
            strategy: pf.strategy,
            spec,
        };
        gpu.launch_on(exec, &kernel)?;
        Ok(())
    };

    if transpose {
        // Q^T = (tree_L ... tree_1 level0)^T applied left-to-right:
        // level-0 first, then the tree levels bottom-up.
        horizontal(gpu)?;
        for nodes in &pf.levels {
            tree_level(gpu, nodes)?;
        }
    } else {
        // Q: tree levels top-down, then level-0.
        for nodes in pf.levels.iter().rev() {
            tree_level(gpu, nodes)?;
        }
        horizontal(gpu)?;
    }
    Ok(())
}

/// Trailing-matrix update inside one matrix: apply the panel's `Q^T` to the
/// columns `[col_from, col_to)` of `a` (the matrix that was factored).
pub fn apply_panel_within<T: Scalar>(
    gpu: &Gpu,
    a: &mut Matrix<T>,
    pf: &PanelFactor<T>,
    col_from: usize,
    col_to: usize,
    transpose: bool,
) -> Result<(), CaqrError> {
    if col_from < pf.col0 + pf.width && col_to > pf.col0 {
        return Err(CaqrError::BadShape(format!(
            "trailing columns [{col_from}, {col_to}) overlap panel columns [{}, {})",
            pf.col0,
            pf.col0 + pf.width
        )));
    }
    let cols = col_blocks(col_from, col_to, pf.bs.w);
    let p = MatPtr::new(a);
    apply_panel_ptr(gpu, p, pf, &cols, transpose)
}

/// Apply the panel's `Q` or `Q^T` to a separate matrix `target`.
pub fn apply_panel_to<T: Scalar>(
    gpu: &Gpu,
    pf: &PanelFactor<T>,
    target: &mut Matrix<T>,
    transpose: bool,
) -> Result<(), CaqrError> {
    if pf.rows_end() != target.rows() {
        return Err(DenseError::ShapeMismatch {
            context: "apply_panel_to: target rows vs panel rows",
            expected: pf.rows_end(),
            got: target.rows(),
        }
        .into());
    }
    let cols = col_blocks(0, target.cols(), pf.bs.w);
    apply_panel_ptr(gpu, MatPtr::new(target), pf, &cols, transpose)
}

/// A standalone TSQR factorization of a tall-skinny matrix
/// (width <= the block width).
pub struct Tsqr<T: Scalar> {
    /// The factored matrix (R in the top triangle, Householder tails in the
    /// tiles).
    pub factored: Matrix<T>,
    /// The panel factor.
    pub pf: PanelFactor<T>,
}

/// Factor a tall-skinny matrix (`cols <= bs.w`) with TSQR on the GPU.
pub fn tsqr<T: Scalar>(
    gpu: &Gpu,
    mut a: Matrix<T>,
    bs: BlockSize,
    strategy: ReductionStrategy,
) -> Result<Tsqr<T>, CaqrError> {
    let n = a.cols();
    if n > bs.w {
        return Err(CaqrError::BadShape(format!(
            "TSQR panel width {n} exceeds block width {}; use CAQR",
            bs.w
        )));
    }
    if a.rows() < n {
        return Err(CaqrError::BadShape(format!(
            "TSQR requires rows >= cols (got {}x{n})",
            a.rows()
        )));
    }
    crate::health::check_matrix_finite(gpu, Exec::Sync, &a, bs, "tsqr input")?;
    let pf = factor_panel(gpu, &mut a, 0, 0, n, bs, strategy)?;
    Ok(Tsqr { factored: a, pf })
}

impl<T: Scalar> Tsqr<T> {
    /// The `n x n` upper-triangular factor.
    pub fn r(&self) -> Matrix<T> {
        let n = self.pf.width;
        Matrix::from_fn(n, n, |i, j| {
            if i <= j {
                self.factored[(i, j)]
            } else {
                T::ZERO
            }
        })
    }

    /// Apply `Q^T` to `c` in place (`c` has the panel's full row count).
    pub fn apply_qt(&self, gpu: &Gpu, c: &mut Matrix<T>) -> Result<(), CaqrError> {
        apply_panel_to(gpu, &self.pf, c, true)
    }

    /// Apply `Q` to `c` in place.
    pub fn apply_q(&self, gpu: &Gpu, c: &mut Matrix<T>) -> Result<(), CaqrError> {
        apply_panel_to(gpu, &self.pf, c, false)
    }

    /// Form the explicit `m x n` orthogonal factor (the `SORGQR` analogue —
    /// "retrieving Q explicitly using CAQR is just as efficient as factoring
    /// the matrix", Section V-C).
    pub fn generate_q(&self, gpu: &Gpu) -> Result<Matrix<T>, CaqrError> {
        let m = self.factored.rows();
        let n = self.pf.width;
        let mut q = Matrix::<T>::eye(m, n);
        self.apply_q(gpu, &mut q)?;
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::generate;
    use dense::norms::{orthogonality_error, reconstruction_error};
    use gpu_sim::DeviceSpec;

    fn gpu() -> Gpu {
        Gpu::new(DeviceSpec::c2050())
    }

    fn check_tsqr(m: usize, n: usize, bs: BlockSize, seed: u64) {
        let a = generate::uniform::<f64>(m, n, seed);
        let g = gpu();
        let f = tsqr(
            &g,
            a.clone(),
            bs,
            ReductionStrategy::RegisterSerialTransposed,
        )
        .unwrap();
        let r = f.r();
        let q = f.generate_q(&g).unwrap();
        let rec = reconstruction_error(&a, &q, &r);
        let ort = orthogonality_error(&q);
        assert!(rec < 1e-13, "reconstruction {rec} for {m}x{n} bs {bs:?}");
        assert!(ort < 1e-13, "orthogonality {ort} for {m}x{n} bs {bs:?}");
    }

    #[test]
    fn tsqr_exact_tiles() {
        check_tsqr(512, 16, BlockSize { h: 64, w: 16 }, 1);
    }

    #[test]
    fn tsqr_ragged_tiles() {
        // 500 rows: 7 tiles of 64 + 52-row remainder (kept, >= 16).
        check_tsqr(500, 16, BlockSize { h: 64, w: 16 }, 2);
        // 459 = 64*7 + 11: remainder merges into the last tile.
        check_tsqr(459, 16, BlockSize { h: 64, w: 16 }, 3);
    }

    #[test]
    fn tsqr_narrow_panel() {
        check_tsqr(300, 5, BlockSize { h: 64, w: 16 }, 4);
        check_tsqr(300, 1, BlockSize { h: 64, w: 16 }, 5);
    }

    #[test]
    fn tsqr_single_tile() {
        check_tsqr(50, 16, BlockSize { h: 64, w: 16 }, 6);
    }

    #[test]
    fn tsqr_deep_tree() {
        // 8-ary tree with 3 levels: 128 tiles -> 16 -> 2 -> 1.
        check_tsqr(128 * 128, 16, BlockSize { h: 128, w: 16 }, 7);
    }

    #[test]
    fn tsqr_r_matches_lapack_up_to_sign() {
        let m = 640;
        let n = 12;
        let a = generate::uniform::<f64>(m, n, 8);
        let g = gpu();
        let f = tsqr(
            &g,
            a.clone(),
            BlockSize { h: 64, w: 16 },
            ReductionStrategy::RegisterSerialTransposed,
        )
        .unwrap();
        let r_tsqr = f.r();
        let mut af = a.clone();
        let tau = dense::blocked::geqrf(&mut af, 8);
        let _ = tau;
        for j in 0..n {
            for i in 0..=j {
                assert!(
                    (r_tsqr[(i, j)].abs() - af[(i, j)].abs()).abs() < 1e-10,
                    "|R| mismatch at ({i},{j}): {} vs {}",
                    r_tsqr[(i, j)],
                    af[(i, j)]
                );
            }
        }
    }

    #[test]
    fn apply_qt_then_q_is_identity() {
        let a = generate::uniform::<f64>(400, 10, 9);
        let g = gpu();
        let f = tsqr(
            &g,
            a,
            BlockSize { h: 64, w: 16 },
            ReductionStrategy::RegisterSerialTransposed,
        )
        .unwrap();
        let c0 = generate::uniform::<f64>(400, 3, 10);
        let mut c = c0.clone();
        f.apply_qt(&g, &mut c).unwrap();
        f.apply_q(&g, &mut c).unwrap();
        for i in 0..400 {
            for j in 0..3 {
                assert!((c[(i, j)] - c0[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn qt_a_equals_r_stacked_with_zeros() {
        let a = generate::uniform::<f64>(333, 8, 11);
        let g = gpu();
        let f = tsqr(
            &g,
            a.clone(),
            BlockSize { h: 64, w: 16 },
            ReductionStrategy::RegisterSerialTransposed,
        )
        .unwrap();
        let mut c = a.clone();
        f.apply_qt(&g, &mut c).unwrap();
        let r = f.r();
        // ||Q^T A - [R; 0]|| should be ~ machine epsilon relative to ||A||.
        let mut err: f64 = 0.0;
        for j in 0..8 {
            for i in 0..333 {
                let want = if i <= j { r[(i, j)] } else { 0.0 };
                err = err.max((c[(i, j)] - want).abs());
            }
        }
        assert!(err < 1e-12, "max deviation {err}");
    }

    #[test]
    fn wide_panel_rejected() {
        let g = gpu();
        let a = generate::uniform::<f64>(100, 40, 12);
        let e = tsqr(
            &g,
            a,
            BlockSize { h: 64, w: 16 },
            ReductionStrategy::RegisterSerialTransposed,
        );
        assert!(matches!(e, Err(CaqrError::BadShape(_))));
    }

    #[test]
    fn ledger_records_expected_kernel_mix() {
        let g = gpu();
        let a = generate::uniform::<f64>(4096, 16, 13);
        let _f = tsqr(
            &g,
            a,
            BlockSize { h: 64, w: 16 },
            ReductionStrategy::RegisterSerialTransposed,
        )
        .unwrap();
        let l = g.ledger();
        // 64 tiles, quad tree: levels of 16, 4, 1 -> 3 factor_tree launches.
        assert_eq!(l.per_op["factor"].calls, 1);
        assert_eq!(l.per_op["factor_tree"].calls, 3);
        assert!(l.seconds > 0.0);
    }
}
