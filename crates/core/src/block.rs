//! Block geometry: panel tiling and reduction-tree planning.
//!
//! TSQR splits a tall panel vertically into `h x w` blocks (Figure 2 of the
//! paper); the per-block `R` factors are then reduced in a tree whose arity
//! is `h / w` — "if the block size is 64 x 16 ... we reduce the height of the
//! panel by a factor of 4 at each level and the reduction is a quad-tree"
//! (Section IV-C). With the paper's best 128 x 16 blocks the tree is 8-ary.

/// Block dimensions used by the GPU kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockSize {
    /// Block height (rows per thread-block tile).
    pub h: usize,
    /// Block width == panel width (columns factored per TSQR panel).
    pub w: usize,
}

impl BlockSize {
    /// The paper's tuned choice for the C2050: 128 x 16.
    pub fn c2050_best() -> Self {
        BlockSize { h: 128, w: 16 }
    }

    /// The example block size from Section IV-C (64 x 16, quad-tree).
    pub fn quad_tree_example() -> Self {
        BlockSize { h: 64, w: 16 }
    }

    /// Reduction-tree arity: how many stacked `w x w` R-triangles fit in one
    /// `h x w` block, clamped to at least 2 so the tree always shrinks.
    pub fn arity(&self) -> usize {
        (self.h / self.w).max(2)
    }

    /// Threads per block (fixed at 64, matching the paper's kernels).
    pub fn threads(&self) -> usize {
        64
    }

    /// Sanity constraints: the tree must shrink (`h >= 2w`) and dimensions
    /// must be positive.
    pub fn validate(&self) -> Result<(), String> {
        if self.w == 0 || self.h == 0 {
            return Err(format!("degenerate block size {}x{}", self.h, self.w));
        }
        if self.h < 2 * self.w {
            return Err(format!(
                "block height {} must be at least 2x the width {} for the reduction tree to shrink",
                self.h, self.w
            ));
        }
        Ok(())
    }
}

/// One tile of a panel: `start` is the absolute row of its first element.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tile {
    /// Absolute first row.
    pub start: usize,
    /// Number of rows.
    pub rows: usize,
}

/// Split `rows` panel rows beginning at absolute row `row0` into tiles of
/// height `h`. A final remainder shorter than `w` is merged into the previous
/// tile (a QR block must have at least as many rows as columns), so tile
/// heights are in `[w, h + w)` except when the whole panel is shorter than
/// `h` (then there is a single tile of `rows` rows).
pub fn tile_panel(row0: usize, rows: usize, h: usize, w: usize) -> Vec<Tile> {
    assert!(rows > 0, "empty panel");
    if rows <= h {
        return vec![Tile { start: row0, rows }];
    }
    let mut tiles = Vec::with_capacity(rows / h + 1);
    let mut r = 0;
    while r < rows {
        let take = h.min(rows - r);
        tiles.push(Tile {
            start: row0 + r,
            rows: take,
        });
        r += take;
    }
    // Merge an undersized trailing remainder into its predecessor.
    let mut merged = false;
    if let [.., prev, last] = tiles.as_mut_slice() {
        if last.rows < w {
            prev.rows += last.rows;
            merged = true;
        }
    }
    if merged {
        tiles.truncate(tiles.len() - 1);
    }
    tiles
}

/// Shape of the TSQR reduction tree (Section II-B: "this can be done using
/// any tree shape. The optimal shape can differ depending on the
/// characteristics of the architecture. For example, on multi-core machines
/// a binomial tree reduction was used, whereas our GPU approach employs a
/// quad-tree reduction").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeShape {
    /// Arity determined by the block geometry, `h / w` — the paper's GPU
    /// choice (quad-tree for 64x16 blocks, 8-ary for 128x16).
    DeviceArity,
    /// Fixed arity (clamped to at least 2).
    Arity(usize),
    /// Pairwise binomial reduction — the multicore choice of the paper's
    /// reference \[10\].
    Binomial,
    /// Single-level flat reduction: every surviving R is stacked into one
    /// block. Communication-minimal in launches but serial and usually
    /// infeasible on a real GPU (the stack overflows fast memory) — kept
    /// for the tree-shape ablation.
    Flat,
}

impl TreeShape {
    /// Effective reduction arity for a block size.
    pub fn arity(self, bs: BlockSize) -> usize {
        match self {
            TreeShape::DeviceArity => bs.arity(),
            TreeShape::Arity(n) => n.max(2),
            TreeShape::Binomial => 2,
            TreeShape::Flat => usize::MAX,
        }
    }
}

/// A group of R-triangles reduced together by one `factor_tree` block.
/// `members` are the absolute row offsets of the stacked `w x w` triangles;
/// the group's output `R` is attributed to `members[0]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeGroup {
    /// Row offsets of the participating triangles (2..=arity of them).
    pub members: Vec<usize>,
}

/// The full reduction-tree plan for one panel: `levels[l]` lists the groups
/// factored at level `l` (level 0 of the *tree*, i.e. the first reduction
/// after the per-block factorization). Singleton carries (a leftover R that
/// joins a group at a later level) do not appear as groups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreePlan {
    /// Groups per level.
    pub levels: Vec<Vec<TreeGroup>>,
}

impl TreePlan {
    /// Total number of `factor_tree` block launches implied by the plan.
    pub fn total_groups(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }
}

/// Plan the reduction tree over the per-tile R offsets.
pub fn plan_tree(tile_starts: &[usize], arity: usize) -> TreePlan {
    assert!(arity >= 2);
    let mut current: Vec<usize> = tile_starts.to_vec();
    let mut levels = Vec::new();
    while current.len() > 1 {
        let mut groups = Vec::new();
        let mut next = Vec::with_capacity(current.len().div_ceil(arity));
        for chunk in current.chunks(arity) {
            next.push(chunk[0]);
            if chunk.len() >= 2 {
                groups.push(TreeGroup {
                    members: chunk.to_vec(),
                });
            }
            // A singleton chunk passes its R through to the next level
            // unchanged (no kernel work).
        }
        // A level can be group-free only if the reduction stalled, which
        // chunks(arity>=2) makes impossible while current.len() > 1.
        debug_assert!(!groups.is_empty());
        levels.push(groups);
        current = next;
    }
    TreePlan { levels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quad_tree_example() {
        // 64x16 blocks reduce 4 Rs per block: Figure 2's quad tree.
        let bs = BlockSize::quad_tree_example();
        assert_eq!(bs.arity(), 4);
        bs.validate().unwrap();
        // 16 tiles -> 4 groups -> 1 group.
        let starts: Vec<usize> = (0..16).map(|i| i * 64).collect();
        let plan = plan_tree(&starts, bs.arity());
        assert_eq!(plan.levels.len(), 2);
        assert_eq!(plan.levels[0].len(), 4);
        assert_eq!(plan.levels[1].len(), 1);
        assert_eq!(plan.levels[1][0].members, vec![0, 256, 512, 768]);
    }

    #[test]
    fn best_block_is_8ary() {
        assert_eq!(BlockSize::c2050_best().arity(), 8);
    }

    #[test]
    fn tile_panel_exact_division() {
        let t = tile_panel(0, 512, 128, 16);
        assert_eq!(t.len(), 4);
        assert!(t.iter().all(|t| t.rows == 128));
        assert_eq!(t[3].start, 384);
    }

    #[test]
    fn tile_panel_merges_small_remainder() {
        // 128*3 + 7 rows: the 7-row remainder (< w=16) merges into tile 2.
        let t = tile_panel(10, 391, 128, 16);
        assert_eq!(t.len(), 3);
        assert_eq!(t[2].rows, 128 + 7);
        assert_eq!(t[2].start, 10 + 256);
        assert_eq!(t.iter().map(|t| t.rows).sum::<usize>(), 391);
    }

    #[test]
    fn tile_panel_keeps_large_remainder() {
        let t = tile_panel(0, 300, 128, 16);
        assert_eq!(t.len(), 3);
        assert_eq!(t[2].rows, 44);
    }

    #[test]
    fn tile_panel_short_panel_single_tile() {
        let t = tile_panel(5, 40, 128, 16);
        assert_eq!(t, vec![Tile { start: 5, rows: 40 }]);
        // Even shorter than w: still one tile (handled by small QR).
        let t = tile_panel(5, 9, 128, 16);
        assert_eq!(t[0].rows, 9);
    }

    #[test]
    fn plan_tree_single_tile_is_empty() {
        let plan = plan_tree(&[0], 4);
        assert!(plan.levels.is_empty());
        assert_eq!(plan.total_groups(), 0);
    }

    #[test]
    fn plan_tree_with_singleton_carry() {
        // 5 tiles, arity 4: level0 = [0,1,2,3] grouped + 4 carried;
        // level1 = [0, 4].
        let starts = [0, 100, 200, 300, 400];
        let plan = plan_tree(&starts, 4);
        assert_eq!(plan.levels.len(), 2);
        assert_eq!(plan.levels[0].len(), 1);
        assert_eq!(plan.levels[0][0].members, vec![0, 100, 200, 300]);
        assert_eq!(plan.levels[1][0].members, vec![0, 400]);
    }

    #[test]
    fn plan_tree_always_terminates_and_covers() {
        for n in 1..200 {
            for arity in [2, 4, 8] {
                let starts: Vec<usize> = (0..n).map(|i| i * 7).collect();
                let plan = plan_tree(&starts, arity);
                // Each level shrinks the population; final population is 1.
                let mut pop = n;
                for level in &plan.levels {
                    let grouped: usize = level.iter().map(|g| g.members.len()).sum();
                    let singles = pop - grouped;
                    pop = level.len() + singles;
                }
                assert_eq!(pop, 1, "n={n} arity={arity}");
            }
        }
    }

    #[test]
    fn tree_shapes_resolve_to_arities() {
        let bs = BlockSize { h: 128, w: 16 };
        assert_eq!(TreeShape::DeviceArity.arity(bs), 8);
        assert_eq!(TreeShape::Binomial.arity(bs), 2);
        assert_eq!(TreeShape::Arity(4).arity(bs), 4);
        assert_eq!(TreeShape::Arity(1).arity(bs), 2, "arity clamps to 2");
        assert_eq!(TreeShape::Flat.arity(bs), usize::MAX);
    }

    #[test]
    fn binomial_tree_is_deeper_than_device_tree() {
        let starts: Vec<usize> = (0..64).map(|i| i * 128).collect();
        let dev = plan_tree(&starts, 8);
        let bin = plan_tree(&starts, 2);
        assert_eq!(dev.levels.len(), 2); // 64 -> 8 -> 1
        assert_eq!(bin.levels.len(), 6); // 64 -> 32 -> ... -> 1
                                         // Binomial does more, smaller reductions overall.
        assert!(bin.total_groups() > dev.total_groups());
    }

    #[test]
    fn flat_tree_is_one_level() {
        let starts: Vec<usize> = (0..50).map(|i| i * 64).collect();
        let plan = plan_tree(&starts, usize::MAX);
        assert_eq!(plan.levels.len(), 1);
        assert_eq!(plan.levels[0].len(), 1);
        assert_eq!(plan.levels[0][0].members.len(), 50);
    }

    #[test]
    fn invalid_blocks_rejected() {
        assert!(BlockSize { h: 16, w: 16 }.validate().is_err());
        assert!(BlockSize { h: 0, w: 4 }.validate().is_err());
        assert!(BlockSize { h: 128, w: 16 }.validate().is_ok());
    }
}
