//! Property tests for the interconnect cost model (DESIGN.md §11):
//! determinism, monotonicity in message size and in `alpha` / `1/beta`,
//! latency floors for empty messages, and timestamp sanity.

use gpu_sim::{Cluster, DeviceSpec, LinkSpec, Topology};
use proptest::prelude::*;

fn topo(sel: usize) -> Topology {
    if sel.is_multiple_of(2) {
        Topology::Ring
    } else {
        Topology::BinomialTree
    }
}

/// Decode one packed op word into `(from, to, bytes)` for a `p`-device
/// cluster: low bits pick endpoints, high bits the payload size.
fn decode_op(word: u64, p: usize) -> (usize, usize, u64) {
    let from = (word & 0xff) as usize % p;
    let to = ((word >> 8) & 0xff) as usize % p;
    let bytes = (word >> 16) & ((1 << 22) - 1);
    (from, to, bytes)
}

/// Replay a packed op script on a fresh cluster.
fn replay(p: usize, link: LinkSpec, topology: Topology, ops: &[u64]) -> Cluster {
    let c = Cluster::new(p, DeviceSpec::c2050(), link, topology);
    for &word in ops {
        let (from, to, bytes) = decode_op(word, p);
        if from != to {
            c.transfer(from, to, bytes);
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The model is a pure function of its inputs: replaying the same op
    /// script on the same cluster configuration reproduces every event
    /// timestamp bit-for-bit.
    #[test]
    fn cost_model_is_deterministic(
        alpha_us in 0.1f64..50.0,
        beta_gbs in 0.5f64..40.0,
        hop_us in 0.0f64..5.0,
        topo_sel in 0usize..2,
        p in 2usize..9,
        ops in collection::vec(0u64..u64::MAX, 1..40),
    ) {
        let link = LinkSpec { alpha_us, beta_gbs, hop_us };
        let a = replay(p, link, topo(topo_sel), &ops);
        let b = replay(p, link, topo(topo_sel), &ops);
        let (ea, eb) = (a.comm_events(), b.comm_events());
        prop_assert_eq!(ea.len(), eb.len());
        for (x, y) in ea.iter().zip(&eb) {
            prop_assert_eq!(x.from, y.from);
            prop_assert_eq!(x.to, y.to);
            prop_assert!(x.start == y.start && x.end == y.end,
                "timestamps must replay exactly: {:?} vs {:?}", x, y);
        }
        prop_assert!(a.makespan() == b.makespan());
    }

    /// Transfer time is monotone non-decreasing in message size.
    #[test]
    fn transfer_time_monotone_in_bytes(
        alpha_us in 0.1f64..50.0,
        beta_gbs in 0.5f64..40.0,
        hop_us in 0.0f64..5.0,
        hops in 0usize..6,
        b1 in 0u64..(1u64 << 30),
        b2 in 0u64..(1u64 << 30),
    ) {
        let link = LinkSpec { alpha_us, beta_gbs, hop_us };
        let (lo, hi) = (b1.min(b2), b1.max(b2));
        prop_assert!(link.transfer_seconds(lo, hops) <= link.transfer_seconds(hi, hops));
    }

    /// Transfer time is monotone increasing in the latency term `alpha`
    /// and monotone non-increasing in bandwidth (i.e. increasing in
    /// `1/beta`).
    #[test]
    fn transfer_time_monotone_in_alpha_and_inverse_beta(
        alpha_us in 0.1f64..50.0,
        beta_gbs in 0.5f64..40.0,
        hop_us in 0.0f64..5.0,
        d_alpha in 0.001f64..100.0,
        beta_scale in 1.001f64..100.0,
        bytes in 0u64..(1u64 << 30),
        hops in 0usize..6,
    ) {
        let link = LinkSpec { alpha_us, beta_gbs, hop_us };
        let slower_alpha = LinkSpec { alpha_us: alpha_us + d_alpha, ..link };
        prop_assert!(
            slower_alpha.transfer_seconds(bytes, hops) > link.transfer_seconds(bytes, hops)
        );
        let slower_beta = LinkSpec { beta_gbs: beta_gbs / beta_scale, ..link };
        prop_assert!(
            slower_beta.transfer_seconds(bytes, hops) >= link.transfer_seconds(bytes, hops)
        );
        if bytes > 0 {
            prop_assert!(
                slower_beta.transfer_seconds(bytes, hops) > link.transfer_seconds(bytes, hops)
            );
        }
    }

    /// Zero-byte messages still pay the full latency terms: the alpha cost
    /// is exactly what the CAQR reduction tree is shaped to avoid, so it
    /// must never round to free.
    #[test]
    fn zero_byte_messages_pay_latency(
        alpha_us in 0.1f64..50.0,
        beta_gbs in 0.5f64..40.0,
        hop_us in 0.0f64..5.0,
        topo_sel in 0usize..2,
        p in 2usize..9,
        endpoints in 0u64..u64::MAX,
    ) {
        let (from, to, _) = decode_op(endpoints, p);
        prop_assume!(from != to);
        let link = LinkSpec { alpha_us, beta_gbs, hop_us };
        let c = Cluster::new(p, DeviceSpec::c2050(), link, topo(topo_sel));
        let t = c.transfer(from, to, 0);
        prop_assert!(t >= alpha_us * 1.0e-6);
        let ev = c.comm_events();
        prop_assert_eq!(ev.len(), 1);
        prop_assert!(ev[0].end - ev[0].start >= alpha_us * 1.0e-6);
    }

    /// Every event the model emits has finite, ordered, non-negative
    /// timestamps, hop counts consistent with the topology, and clocks
    /// that never run backwards.
    #[test]
    fn timestamps_are_finite_ordered_and_nonnegative(
        alpha_us in 0.1f64..50.0,
        beta_gbs in 0.5f64..40.0,
        hop_us in 0.0f64..5.0,
        topo_sel in 0usize..2,
        p in 1usize..9,
        ops in collection::vec(0u64..u64::MAX, 0..60),
    ) {
        let link = LinkSpec { alpha_us, beta_gbs, hop_us };
        let c = replay(p, link, topo(topo_sel), &ops);
        for e in c.comm_events() {
            prop_assert!(e.start.is_finite() && e.end.is_finite());
            prop_assert!(e.start >= 0.0);
            prop_assert!(e.end > e.start, "messages take positive time");
            prop_assert_eq!(e.hops, c.topology().hops(p, e.from, e.to));
        }
        for d in 0..p {
            let t = c.device_time(d);
            prop_assert!(t.is_finite() && t >= 0.0);
        }
        let mk = c.makespan();
        prop_assert!(mk.is_finite() && mk >= 0.0);
        // The makespan dominates every device clock and every event end.
        for e in c.comm_events() {
            prop_assert!(mk >= e.end - 1e-18);
        }
    }

    /// Collectives behave on every shape: broadcast and reduce complete
    /// with finite times and touch every non-root rank exactly as the
    /// topology prescribes.
    #[test]
    fn collectives_complete_on_all_shapes(
        alpha_us in 0.1f64..50.0,
        beta_gbs in 0.5f64..40.0,
        hop_us in 0.0f64..5.0,
        topo_sel in 0usize..2,
        p in 1usize..9,
        root_sel in 0usize..16,
        bytes in 0u64..(1u64 << 22),
    ) {
        let link = LinkSpec { alpha_us, beta_gbs, hop_us };
        let root = root_sel % p;
        let c = Cluster::new(p, DeviceSpec::c2050(), link, topo(topo_sel));
        let tb = c.broadcast(root, bytes);
        prop_assert!(tb.is_finite() && tb >= 0.0);
        let c2 = Cluster::new(p, DeviceSpec::c2050(), link, topo(topo_sel));
        let tr = c2.reduce(root, bytes);
        prop_assert!(tr.is_finite() && tr >= 0.0);
        // Each non-root rank contributes exactly one reduce message.
        let ev = c2.comm_events();
        prop_assert_eq!(ev.len(), p - 1);
        for e in &ev {
            prop_assert!(e.from != root || p == 1);
        }
    }
}
