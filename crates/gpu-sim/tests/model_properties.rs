//! Property tests of the device model: timing must be monotone, additive
//! and conserve the recorded quantities.

use gpu_sim::{BlockCost, CostMeter, DeviceSpec, Gpu, LaunchConfig};
use proptest::prelude::*;

fn cfg(blocks: usize) -> LaunchConfig {
    LaunchConfig {
        blocks,
        threads_per_block: 64,
        shared_mem_bytes: 1024,
        regs_per_thread: 16,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn launch_time_monotone_in_work(issue in 1.0f64..1e7, gmem in 0.0f64..1e8, blocks in 1usize..500) {
        let gpu = Gpu::new(DeviceSpec::c2050());
        let small = BlockCost { flops: 100, issue_cycles: issue, gmem_bytes: gmem, smem_words: 0, syncs: 0 };
        let big = BlockCost { flops: 100, issue_cycles: issue * 2.0, gmem_bytes: gmem * 2.0, smem_words: 0, syncs: 0 };
        let t1 = gpu.launch_uniform("a", cfg(blocks), &small).unwrap().seconds;
        let t2 = gpu.launch_uniform("b", cfg(blocks), &big).unwrap().seconds;
        prop_assert!(t2 >= t1);
    }

    #[test]
    fn launch_time_never_below_overhead_or_rooflines(
        issue in 0.0f64..1e6,
        gmem in 0.0f64..1e7,
        blocks in 1usize..200,
    ) {
        let gpu = Gpu::new(DeviceSpec::c2050());
        let spec = gpu.spec().clone();
        let c = BlockCost { flops: 1, issue_cycles: issue, gmem_bytes: gmem, smem_words: 0, syncs: 0 };
        let t = gpu.launch_uniform("k", cfg(blocks), &c).unwrap().seconds;
        let overhead = spec.launch_overhead_us * 1e-6;
        let dram_floor = blocks as f64 * gmem / (spec.dram_bw_gbs * 1e9);
        // Even a perfectly parallel machine cannot beat DRAM or the launch.
        prop_assert!(t + 1e-15 >= overhead);
        prop_assert!(t + 1e-12 >= dram_floor);
        // And never slower than fully serial issue + dram + overhead.
        let serial = overhead
            + blocks as f64 * issue * spec.cycle_seconds()
            + dram_floor;
        prop_assert!(t <= serial + 1e-12);
    }

    #[test]
    fn ledger_totals_are_additive(k1 in 1usize..50, k2 in 1usize..50) {
        let gpu = Gpu::new(DeviceSpec::c2050());
        let c = BlockCost { flops: 1000, issue_cycles: 500.0, gmem_bytes: 4096.0, smem_words: 10, syncs: 1 };
        for _ in 0..k1 {
            gpu.launch_uniform("x", cfg(3), &c).unwrap();
        }
        let mid = gpu.ledger();
        for _ in 0..k2 {
            gpu.launch_uniform("y", cfg(3), &c).unwrap();
        }
        let end = gpu.ledger();
        prop_assert_eq!(end.calls, (k1 + k2) as u64);
        prop_assert!((end.flops - mid.flops * (k1 + k2) as f64 / k1 as f64).abs() < 1.0);
        prop_assert!(end.seconds > mid.seconds);
    }

    #[test]
    fn meter_issue_cycles_accumulate_monotonically(ops in proptest::collection::vec(1u64..10_000, 1..20)) {
        let spec = DeviceSpec::c2050();
        let mut m = CostMeter::new(&spec);
        let mut last = 0.0;
        for (i, &n) in ops.iter().enumerate() {
            match i % 4 {
                0 => m.fma(n),
                1 => m.smem(n),
                2 => m.alu(n),
                _ => m.gmem(n, 4, i % 2 == 0),
            }
            prop_assert!(m.cost.issue_cycles >= last);
            last = m.cost.issue_cycles;
        }
    }

    #[test]
    fn occupancy_never_exceeds_fermi_limits(
        threads in 1usize..512,
        smem in 0usize..48_000,
        regs in 1usize..63,
    ) {
        let spec = DeviceSpec::c2050();
        let c = LaunchConfig {
            blocks: 10,
            threads_per_block: threads,
            shared_mem_bytes: smem,
            regs_per_thread: regs,
        };
        if c.validate(&spec).is_ok() {
            let occ = c.blocks_per_sm(&spec);
            prop_assert!(occ >= 1);
            prop_assert!(occ <= 8, "Fermi resident-block limit");
            prop_assert!(occ * threads <= 1536, "thread limit");
            if smem > 0 {
                prop_assert!(occ * smem <= spec.smem_per_sm);
            }
        }
    }
}

#[test]
fn splitting_a_launch_in_two_is_never_faster() {
    // Launch overhead makes one big launch at least as good as two halves —
    // the reason the paper fuses work into as few kernels as possible.
    let gpu = Gpu::new(DeviceSpec::c2050());
    let c = BlockCost {
        flops: 1000,
        issue_cycles: 10_000.0,
        gmem_bytes: 1e5,
        smem_words: 0,
        syncs: 0,
    };
    let one = gpu.launch_uniform("one", cfg(100), &c).unwrap().seconds;
    let half_a = gpu.launch_uniform("a", cfg(50), &c).unwrap().seconds;
    let half_b = gpu.launch_uniform("b", cfg(50), &c).unwrap().seconds;
    assert!(one <= half_a + half_b + 1e-12);
}
