//! Machine descriptions and calibration constants.
//!
//! All performance in this workspace is *modelled*: kernels execute their
//! real arithmetic on the host, and these specs convert the operation counts
//! they record into seconds. The constants are fixed once, here — they are
//! not fitted per experiment (see DESIGN.md §5).

/// Description of a CUDA-class GPU (Fermi generation, matching the paper).
#[derive(Clone, Debug)]
pub struct DeviceSpec {
    /// Marketing name, used in reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sms: usize,
    /// Scalar lanes ("CUDA cores") per SM; one warp instruction retires
    /// 32 lanes of work per cycle.
    pub lanes_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Peak single-precision flops per lane per cycle (2 = FMA).
    pub flops_per_lane_cycle: f64,
    /// Shared memory per SM in bytes (48 KB configuration).
    pub smem_per_sm: usize,
    /// Register file per SM in bytes (128 KB on Fermi).
    pub regfile_per_sm: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// Achievable DRAM bandwidth in GB/s (C2050 with ECC: 144).
    pub dram_bw_gbs: f64,
    /// Fixed cost of one kernel launch, microseconds. This covers driver
    /// dispatch plus the synchronization stall between *dependent* kernels
    /// (every CAQR launch consumes its predecessor's output), which on the
    /// 2011 CUDA stack was in the tens of microseconds.
    pub launch_overhead_us: f64,
    /// Issue cost, in cycles, of one warp-wide shared-memory access
    /// (load or store, bank-conflict-free).
    pub smem_cycles_per_warp_access: f64,
    /// Issue cost, in cycles, of one warp-wide global-memory access
    /// (the bandwidth cost is modelled separately; this is pipeline issue).
    pub gmem_issue_cycles_per_warp_access: f64,
    /// Cycles charged per `__syncthreads()`.
    pub sync_cycles: f64,
    /// Multiplier on bytes for non-coalesced (strided) global accesses:
    /// a 4-byte word pulls a whole 32-byte transaction segment.
    pub uncoalesced_factor: f64,
    /// Fraction of peak issue rate actually achieved by well-tuned kernels
    /// (covers dual-issue limits, address arithmetic, predication).
    pub issue_efficiency: f64,
}

impl DeviceSpec {
    /// NVIDIA Tesla C2050 (Fermi), the paper's main platform: 14 SMs x 32
    /// lanes at 1.15 GHz = 1.03 SP TFLOP/s, 144 GB/s with ECC enabled.
    pub fn c2050() -> Self {
        DeviceSpec {
            name: "C2050",
            sms: 14,
            lanes_per_sm: 32,
            clock_ghz: 1.15,
            flops_per_lane_cycle: 2.0,
            smem_per_sm: 48 * 1024,
            regfile_per_sm: 128 * 1024,
            max_threads_per_block: 512,
            dram_bw_gbs: 144.0,
            launch_overhead_us: 25.0,
            smem_cycles_per_warp_access: 3.0,
            gmem_issue_cycles_per_warp_access: 2.0,
            sync_cycles: 16.0,
            uncoalesced_factor: 5.0,
            issue_efficiency: 0.85,
        }
    }

    /// NVIDIA GeForce GTX 480 (Fermi), used for the Robust PCA runs:
    /// 15 SMs at 1.40 GHz, 177 GB/s (no ECC).
    pub fn gtx480() -> Self {
        DeviceSpec {
            name: "GTX480",
            sms: 15,
            lanes_per_sm: 32,
            clock_ghz: 1.40,
            dram_bw_gbs: 177.0,
            ..Self::c2050()
        }
    }

    /// Peak single-precision GFLOP/s.
    pub fn peak_gflops(&self) -> f64 {
        self.sms as f64 * self.lanes_per_sm as f64 * self.flops_per_lane_cycle * self.clock_ghz
    }

    /// Seconds per core cycle.
    pub fn cycle_seconds(&self) -> f64 {
        1.0e-9 / self.clock_ghz
    }

    /// Effective GEMM throughput in GFLOP/s for large square problems
    /// (Volkov-class SGEMM reaches ~60% of peak on Fermi). Used by the
    /// blocked-Householder baseline models for their trailing updates.
    pub fn gemm_gflops(&self) -> f64 {
        0.60 * self.peak_gflops()
    }
}

/// Description of a multicore CPU (for the MKL-class baselines).
#[derive(Clone, Debug)]
pub struct CpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Physical cores used.
    pub cores: usize,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// SP flops per cycle per core (Nehalem SSE: 4-wide add + 4-wide mul).
    pub flops_per_cycle_per_core: f64,
    /// Achievable DRAM bandwidth in GB/s.
    pub dram_bw_gbs: f64,
    /// Per-BLAS-call overhead in microseconds (threading fork/join etc.).
    pub call_overhead_us: f64,
    /// Fraction of peak reached by large BLAS3 operations.
    pub gemm_efficiency: f64,
    /// Last-level cache size in bytes. A QR panel that fits here is streamed
    /// from DRAM once; one that does not is re-streamed per reflector — the
    /// bandwidth cliff TSQR exists to avoid.
    pub cache_bytes: usize,
    /// Achievable GFLOP/s of BLAS2 kernels whose operands are cache-resident.
    pub blas2_cache_gflops: f64,
}

impl CpuSpec {
    /// Dual-socket quad-core Intel Xeon 5530 (Nehalem) at 2.4 GHz — the
    /// 8-core host of the Dirac nodes the paper benchmarks MKL on.
    pub fn nehalem_8core() -> Self {
        CpuSpec {
            name: "Xeon 5530 x2 (8 cores)",
            cores: 8,
            clock_ghz: 2.4,
            flops_per_cycle_per_core: 8.0,
            dram_bw_gbs: 21.0,
            call_overhead_us: 25.0,
            gemm_efficiency: 0.55,
            cache_bytes: 8 << 20,
            blas2_cache_gflops: 12.0,
        }
    }

    /// Intel Core i7 at 2.6 GHz, 4 cores — the CPU of the Robust PCA
    /// comparison in Section VI-D.
    pub fn corei7_4core() -> Self {
        CpuSpec {
            name: "Core i7 (4 cores)",
            cores: 4,
            clock_ghz: 2.6,
            flops_per_cycle_per_core: 8.0,
            dram_bw_gbs: 17.0,
            call_overhead_us: 20.0,
            gemm_efficiency: 0.55,
            cache_bytes: 8 << 20,
            blas2_cache_gflops: 8.0,
        }
    }

    /// A single core of the host, the resource MAGMA/CULA-class hybrid QRs
    /// dedicate to panel factorization: one core's share of memory bandwidth
    /// and a BLAS2 rate limited by its SSE units.
    pub fn panel_core() -> Self {
        CpuSpec {
            name: "1 host core (panel)",
            cores: 1,
            clock_ghz: 2.4,
            flops_per_cycle_per_core: 8.0,
            dram_bw_gbs: 4.5,
            call_overhead_us: 1.0,
            gemm_efficiency: 0.5,
            cache_bytes: 8 << 20,
            blas2_cache_gflops: 3.5,
        }
    }

    /// Peak single-precision GFLOP/s.
    pub fn peak_gflops(&self) -> f64 {
        self.cores as f64 * self.clock_ghz * self.flops_per_cycle_per_core
    }
}

/// PCI-Express link between host and device memories.
#[derive(Clone, Debug)]
pub struct PcieSpec {
    /// One-way latency per transfer in microseconds.
    pub latency_us: f64,
    /// Sustained bandwidth in GB/s (Gen2 x16 in practice).
    pub bw_gbs: f64,
}

impl PcieSpec {
    /// PCIe Gen-2 x16, the Dirac node interconnect.
    pub fn gen2_x16() -> Self {
        PcieSpec {
            latency_us: 15.0,
            bw_gbs: 5.5,
        }
    }

    /// Seconds to move `bytes` one way.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.latency_us * 1.0e-6 + bytes as f64 / (self.bw_gbs * 1.0e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2050_peak_is_about_one_teraflop() {
        let s = DeviceSpec::c2050();
        let p = s.peak_gflops();
        assert!((p - 1030.4).abs() < 1.0, "got {p}");
    }

    #[test]
    fn gtx480_is_faster_than_c2050() {
        assert!(DeviceSpec::gtx480().peak_gflops() > DeviceSpec::c2050().peak_gflops());
        assert!(DeviceSpec::gtx480().dram_bw_gbs > DeviceSpec::c2050().dram_bw_gbs);
    }

    #[test]
    fn nehalem_peak() {
        // 8 cores * 2.4 GHz * 8 flops = 153.6 GFLOP/s.
        assert!((CpuSpec::nehalem_8core().peak_gflops() - 153.6).abs() < 0.1);
    }

    #[test]
    fn pcie_transfer_has_latency_floor() {
        let p = PcieSpec::gen2_x16();
        assert!(p.transfer_seconds(0) >= 14.0e-6);
        // 1 GB takes ~0.18 s.
        let t = p.transfer_seconds(1 << 30);
        assert!(t > 0.15 && t < 0.25, "got {t}");
    }
}
