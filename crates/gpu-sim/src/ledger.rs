//! Cost ledger: the modelled timeline of a machine.
//!
//! Every kernel launch, BLAS call and PCIe transfer appends modelled seconds
//! and traffic here. Benchmarks read the total; tests check conservation
//! properties (e.g. flop counts match closed forms).

use crate::timeline::Interval;
use std::collections::BTreeMap;

/// Per-operation aggregate.
#[derive(Clone, Debug, Default)]
pub struct OpStats {
    /// Number of invocations.
    pub calls: u64,
    /// Modelled seconds, summed.
    pub seconds: f64,
    /// Useful flops, summed.
    pub flops: f64,
    /// DRAM bytes, summed.
    pub bytes: f64,
}

/// The modelled timeline of one machine (GPU or CPU).
#[derive(Clone, Debug, Default)]
pub struct CostLedger {
    /// Total modelled seconds.
    pub seconds: f64,
    /// Total useful flops.
    pub flops: f64,
    /// Total DRAM traffic in bytes.
    pub dram_bytes: f64,
    /// Kernel launches / BLAS calls.
    pub calls: u64,
    /// Host-to-device transfer bytes (GPU ledgers only).
    pub h2d_bytes: u64,
    /// Device-to-host transfer bytes (GPU ledgers only).
    pub d2h_bytes: u64,
    /// Number of PCIe transfers.
    pub transfers: u64,
    /// Simulated launch faults absorbed (see `fault::FaultPlan`). Faulted
    /// attempts charge launch overhead + backoff to `seconds` but do not
    /// count as `calls` — only admitted launches execute and record work.
    pub faults: u64,
    /// Successful resubmissions after a fault.
    pub retries: u64,
    /// Hung launch attempts killed by the deadline watchdog (each charges
    /// the watchdog deadline as a stall; see [`Self::record_stall`]).
    pub hangs: u64,
    /// Silent-data-corruption events actually applied to kernel output
    /// (admitted SDC faults whose kernel had no output are not counted).
    pub sdc_injected: u64,
    /// Recovery tier 1: single tasks replayed after a detected fault.
    pub task_replays: u64,
    /// Recovery tier 2: whole panels rolled back and refactored.
    pub panel_replays: u64,
    /// Recovery tier 3: whole-run retries from the pristine input.
    pub run_retries: u64,
    /// Device losses suffered (see `fault::FaultKind::DeviceLoss`): the
    /// launch that found the device gone. At most 1 per `Gpu::reset` epoch.
    pub device_losses: u64,
    /// Recovery tier 4: lost-device workloads this device adopted as the
    /// failover survivor (multi-device runs only).
    pub device_failovers: u64,
    /// Interconnect messages sent by this device (multi-device runs only).
    pub net_messages: u64,
    /// Interconnect payload bytes sent by this device.
    pub net_bytes: u64,
    /// Total link hops traversed by this device's sent messages.
    pub net_hops: u64,
    /// Modelled seconds this device spent occupying its interconnect port
    /// as a sender. Tracked under the `net_send` pseudo-op and **not**
    /// added to `seconds`: communication time lives on the cluster clocks
    /// (`gpu_sim::interconnect::Cluster`), never on the device timeline,
    /// so single-device accounting invariants are untouched.
    pub net_seconds: f64,
    /// Per-operation breakdown keyed by kernel/BLAS name.
    pub per_op: BTreeMap<&'static str, OpStats>,
    /// Per-stream per-kernel intervals from stream-scheduled launches,
    /// appended at every `Gpu::synchronize` (empty for purely synchronous
    /// workloads).
    pub intervals: Vec<Interval>,
}

impl CostLedger {
    /// Record an operation.
    pub fn record(&mut self, name: &'static str, seconds: f64, flops: f64, bytes: f64) {
        self.seconds += seconds;
        self.flops += flops;
        self.dram_bytes += bytes;
        self.calls += 1;
        let e = self.per_op.entry(name).or_default();
        e.calls += 1;
        e.seconds += seconds;
        e.flops += flops;
        e.bytes += bytes;
    }

    /// Record a PCIe transfer (`h2d == true` for host-to-device).
    pub fn record_transfer(&mut self, seconds: f64, bytes: u64, h2d: bool) {
        self.seconds += seconds;
        self.transfers += 1;
        if h2d {
            self.h2d_bytes += bytes;
        } else {
            self.d2h_bytes += bytes;
        }
        let e = self
            .per_op
            .entry(if h2d { "h2d" } else { "d2h" })
            .or_default();
        e.calls += 1;
        e.seconds += seconds;
        e.bytes += bytes as f64;
    }

    /// Advance the timeline without attributing work (e.g. host-side stalls).
    pub fn record_idle(&mut self, seconds: f64) {
        self.seconds += seconds;
    }

    /// Record one faulted launch attempt: the wasted submission overhead
    /// plus retry backoff advance the clock, but no call or work is
    /// attributed (the kernel never ran).
    pub fn record_fault(&mut self, seconds: f64) {
        self.seconds += seconds;
        self.faults += 1;
    }

    /// Record one hung launch attempt killed by the watchdog (the stall
    /// seconds are charged separately via [`Self::record_stall`]).
    pub fn record_hang(&mut self) {
        self.hangs += 1;
    }

    /// Record watchdog stall time under the `watchdog_stall` pseudo-op.
    /// Synchronous launches advance the global clock here
    /// (`advance_clock = true`); stream-scheduled launches serialize the
    /// stall on their stream instead, so `Gpu::try_synchronize` attributes
    /// it with `advance_clock = false` (the makespan already covers it).
    /// Stalls never count as kernel `calls` — the hung launch did no work.
    pub fn record_stall(&mut self, seconds: f64, advance_clock: bool) {
        if advance_clock {
            self.seconds += seconds;
        }
        let e = self.per_op.entry("watchdog_stall").or_default();
        e.calls += 1;
        e.seconds += seconds;
    }

    /// Record one applied silent-data-corruption event.
    pub fn record_sdc(&mut self) {
        self.sdc_injected += 1;
    }

    /// Record one recovery action at the given escalation tier.
    pub fn record_task_replay(&mut self) {
        self.task_replays += 1;
    }

    /// Record a tier-2 recovery action (panel rollback + refactor).
    pub fn record_panel_replay(&mut self) {
        self.panel_replays += 1;
    }

    /// Record a tier-3 recovery action (whole-run retry).
    pub fn record_run_retry(&mut self) {
        self.run_retries += 1;
    }

    /// Record this device dropping off the bus (a `DeviceLoss` fault).
    pub fn record_device_loss(&mut self) {
        self.device_losses += 1;
    }

    /// Record a tier-4 recovery action: this device adopted a lost
    /// device's workload as the failover survivor.
    pub fn record_device_failover(&mut self) {
        self.device_failovers += 1;
    }

    /// Record one interconnect message sent by this device. Counts and
    /// per-op seconds only — the cluster clock owns the modelled time (see
    /// the field docs on [`Self::net_seconds`]).
    pub fn record_net_send(&mut self, bytes: u64, hops: u64, seconds: f64) {
        self.net_messages += 1;
        self.net_bytes += bytes;
        self.net_hops += hops;
        self.net_seconds += seconds;
        let e = self.per_op.entry("net_send").or_default();
        e.calls += 1;
        e.seconds += seconds;
        e.bytes += bytes as f64;
    }

    /// Record one kernel of a stream-scheduled batch. Attributes the call,
    /// flops, bytes and per-op seconds, but does **not** advance the global
    /// clock — concurrent kernels overlap, so the batch's wall-clock
    /// contribution is its makespan, added once via [`Self::record_idle`]
    /// by `Gpu::synchronize`.
    pub fn record_span(&mut self, name: &'static str, seconds: f64, flops: f64, bytes: f64) {
        self.flops += flops;
        self.dram_bytes += bytes;
        self.calls += 1;
        let e = self.per_op.entry(name).or_default();
        e.calls += 1;
        e.seconds += seconds;
        e.flops += flops;
        e.bytes += bytes;
    }

    /// Overall modelled GFLOP/s for the work recorded so far.
    pub fn gflops(&self) -> f64 {
        if self.seconds > 0.0 {
            self.flops / self.seconds / 1.0e9
        } else {
            0.0
        }
    }

    /// Human-readable multi-line summary (used by the harness binaries).
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "total: {:.3} ms, {:.1} GFLOP/s, {:.1} MB DRAM, {} calls, {} transfers",
            self.seconds * 1e3,
            self.gflops(),
            self.dram_bytes / 1e6,
            self.calls,
            self.transfers
        );
        if self.faults > 0 || self.hangs > 0 || self.sdc_injected > 0 {
            let _ = writeln!(
                s,
                "  faults absorbed: {} ({} retried successfully), {} hangs killed, {} SDC injected",
                self.faults, self.retries, self.hangs, self.sdc_injected
            );
        }
        if self.task_replays > 0 || self.panel_replays > 0 || self.run_retries > 0 {
            let _ = writeln!(
                s,
                "  recovery: {} task replays, {} panel replays, {} run retries",
                self.task_replays, self.panel_replays, self.run_retries
            );
        }
        if self.device_losses > 0 || self.device_failovers > 0 {
            let _ = writeln!(
                s,
                "  device loss: lost {} time(s), adopted {} failover workload(s)",
                self.device_losses, self.device_failovers
            );
        }
        if self.net_messages > 0 {
            let _ = writeln!(
                s,
                "  net: {} msgs, {:.1} KB, {} hops, {:.3} ms on the wire",
                self.net_messages,
                self.net_bytes as f64 / 1e3,
                self.net_hops,
                self.net_seconds * 1e3
            );
        }
        for (name, op) in &self.per_op {
            let _ = writeln!(
                s,
                "  {:<16} {:>6} calls  {:>10.3} ms  {:>8.1} GFLOP/s",
                name,
                op.calls,
                op.seconds * 1e3,
                if op.seconds > 0.0 {
                    op.flops / op.seconds / 1e9
                } else {
                    0.0
                }
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut l = CostLedger::default();
        l.record("factor", 1.0e-3, 2.0e6, 1.0e3);
        l.record("factor", 1.0e-3, 2.0e6, 1.0e3);
        l.record("apply_qt_h", 2.0e-3, 8.0e6, 0.0);
        assert_eq!(l.calls, 3);
        assert!((l.seconds - 4.0e-3).abs() < 1e-12);
        assert!((l.flops - 12.0e6).abs() < 1.0);
        assert_eq!(l.per_op["factor"].calls, 2);
        // GFLOP/s = 12e6 / 4e-3 / 1e9 = 3.
        assert!((l.gflops() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn transfers_tracked_by_direction() {
        let mut l = CostLedger::default();
        l.record_transfer(1.0e-4, 1000, true);
        l.record_transfer(2.0e-4, 500, false);
        assert_eq!(l.h2d_bytes, 1000);
        assert_eq!(l.d2h_bytes, 500);
        assert_eq!(l.transfers, 2);
        assert!((l.seconds - 3.0e-4).abs() < 1e-15);
    }

    #[test]
    fn summary_mentions_ops() {
        let mut l = CostLedger::default();
        l.record("tree", 1e-3, 1e6, 0.0);
        let s = l.summary();
        assert!(s.contains("tree"));
        assert!(s.contains("calls"));
    }
}
