//! The modelled multicore CPU used by the MKL-class baselines and the hybrid
//! (MAGMA-style) pipeline's panel factorizations.
//!
//! Each BLAS call is charged `overhead + max(flops / (peak * eff),
//! bytes / bandwidth)` — a per-call roofline. The callers pass the traffic
//! of a cache-blocked implementation (e.g. `gemm` streams each operand once),
//! which is what a tuned vendor BLAS achieves.

use crate::ledger::CostLedger;
use crate::spec::CpuSpec;
use parking_lot::Mutex;

/// A modelled multicore CPU with its own timeline.
pub struct CpuMachine {
    spec: CpuSpec,
    ledger: Mutex<CostLedger>,
}

impl CpuMachine {
    /// Build from a spec.
    pub fn new(spec: CpuSpec) -> Self {
        CpuMachine {
            spec,
            ledger: Mutex::new(CostLedger::default()),
        }
    }

    /// The machine description.
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// Snapshot of the timeline.
    pub fn ledger(&self) -> CostLedger {
        self.ledger.lock().clone()
    }

    /// Modelled seconds elapsed.
    pub fn elapsed(&self) -> f64 {
        self.ledger.lock().seconds
    }

    /// Clear the timeline.
    pub fn reset(&self) {
        *self.ledger.lock() = CostLedger::default();
    }

    /// Charge a generic call: `flops` useful flops, `bytes` DRAM traffic,
    /// `eff` fraction of peak the compute side achieves. Returns seconds.
    pub fn call(&self, name: &'static str, flops: f64, bytes: f64, eff: f64) -> f64 {
        let peak = self.spec.peak_gflops() * 1.0e9 * eff;
        let compute = flops / peak;
        let memory = bytes / (self.spec.dram_bw_gbs * 1.0e9);
        let seconds = self.spec.call_overhead_us * 1.0e-6 + compute.max(memory);
        self.ledger.lock().record(name, seconds, flops, bytes);
        seconds
    }

    /// Charge a large matrix-matrix multiply `C(m x n) += A(m x k) B(k x n)`:
    /// `2 m n k` flops, each operand streamed once (cache-blocked).
    pub fn gemm(&self, m: usize, n: usize, k: usize, elem_bytes: f64) -> f64 {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let bytes =
            elem_bytes * (m as f64 * k as f64 + k as f64 * n as f64 + 2.0 * m as f64 * n as f64);
        self.call("cpu_gemm", flops, bytes, self.spec.gemm_efficiency)
    }

    /// Charge a matrix-vector multiply against an `m x n` matrix: strictly
    /// bandwidth-bound (the matrix is streamed once, BLAS2's defining cost).
    pub fn gemv(&self, m: usize, n: usize, elem_bytes: f64) -> f64 {
        let flops = 2.0 * m as f64 * n as f64;
        let bytes = elem_bytes * (m as f64 * n as f64);
        self.call("cpu_gemv", flops, bytes, 0.9)
    }

    /// Charge a rank-1 update of an `m x n` matrix (read + write each entry).
    pub fn ger(&self, m: usize, n: usize, elem_bytes: f64) -> f64 {
        let flops = 2.0 * m as f64 * n as f64;
        let bytes = elem_bytes * (2.0 * m as f64 * n as f64);
        self.call("cpu_ger", flops, bytes, 0.9)
    }

    /// Advance the clock without attributing work (synchronization stalls).
    pub fn idle(&self, seconds: f64) {
        self.ledger.lock().record_idle(seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CpuSpec;

    #[test]
    fn gemm_is_compute_bound_for_big_square() {
        let cpu = CpuMachine::new(CpuSpec::nehalem_8core());
        let t = cpu.gemm(2048, 2048, 2048, 4.0);
        let flops = 2.0 * 2048.0f64.powi(3);
        let gf = flops / t / 1e9;
        // Should land near gemm_efficiency * peak (84.5 GFLOP/s), far above
        // what bandwidth alone would allow.
        let want = 0.55 * 153.6;
        assert!(
            (gf / want - 1.0).abs() < 0.05,
            "gemm at {gf} GFLOP/s, want ~{want}"
        );
    }

    #[test]
    fn gemv_is_bandwidth_bound() {
        let cpu = CpuMachine::new(CpuSpec::nehalem_8core());
        let t = cpu.gemv(100_000, 100, 4.0);
        let gf = 2.0 * 100_000.0 * 100.0 / t / 1e9;
        // 2 flops per 4 bytes at 21 GB/s => ~10.5 GFLOP/s ceiling.
        assert!(
            gf < 11.0,
            "gemv at {gf} GFLOP/s should be bandwidth-limited"
        );
        assert!(gf > 5.0);
    }

    #[test]
    fn small_calls_pay_overhead() {
        let cpu = CpuMachine::new(CpuSpec::nehalem_8core());
        let t = cpu.call("tiny", 100.0, 100.0, 1.0);
        assert!(t >= 4.0e-6);
    }

    #[test]
    fn ledger_accumulates_across_calls() {
        let cpu = CpuMachine::new(CpuSpec::corei7_4core());
        cpu.gemm(64, 64, 64, 4.0);
        cpu.gemv(64, 64, 4.0);
        let l = cpu.ledger();
        assert_eq!(l.calls, 2);
        assert!(l.seconds > 0.0);
        assert!(l.per_op.contains_key("cpu_gemm"));
    }
}
