//! Per-block operation counters and per-launch statistics.
//!
//! Kernels record what they *do* (flops, shared/global memory words moved,
//! barriers, warp-level issue slots) as they do it; the device model in
//! [`crate::device`] converts the totals into modelled seconds.

use crate::spec::DeviceSpec;

/// Operation counts accumulated by one thread block during `run_block`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BlockCost {
    /// Algorithmically useful floating-point operations (an FMA counts 2).
    pub flops: u64,
    /// SM issue cycles consumed by compute + shared-memory instructions.
    /// This is the quantity that makes the four reduction strategies differ.
    pub issue_cycles: f64,
    /// Bytes moved to/from global memory (after coalescing penalties).
    pub gmem_bytes: f64,
    /// Shared-memory words accessed (reads + writes), for reporting.
    pub smem_words: u64,
    /// Number of `__syncthreads()` barriers executed.
    pub syncs: u64,
}

impl BlockCost {
    /// Merge another block's counts (used when aggregating a launch).
    pub fn merge(&mut self, other: &BlockCost) {
        self.flops += other.flops;
        self.issue_cycles += other.issue_cycles;
        self.gmem_bytes += other.gmem_bytes;
        self.smem_words += other.smem_words;
        self.syncs += other.syncs;
    }
}

/// Counting interface handed to kernels. Wraps a [`BlockCost`] plus the
/// device constants needed to convert operations into issue cycles.
#[derive(Clone, Debug)]
pub struct CostMeter {
    /// The running counters.
    pub cost: BlockCost,
    lanes: f64,
    smem_cpw: f64,
    gmem_cpw: f64,
    sync_cycles: f64,
    uncoalesced: f64,
    issue_eff: f64,
}

impl CostMeter {
    /// Build a meter for a device.
    pub fn new(spec: &DeviceSpec) -> Self {
        CostMeter {
            cost: BlockCost::default(),
            lanes: spec.lanes_per_sm as f64,
            smem_cpw: spec.smem_cycles_per_warp_access,
            gmem_cpw: spec.gmem_issue_cycles_per_warp_access,
            sync_cycles: spec.sync_cycles,
            uncoalesced: spec.uncoalesced_factor,
            issue_eff: spec.issue_efficiency,
        }
    }

    /// Reset counters between blocks (meters are reused per worker thread).
    pub fn reset(&mut self) {
        self.cost = BlockCost::default();
    }

    /// Add a pre-computed block cost (used by kernels whose cost is derived
    /// analytically by the same functions the model-only sweeps call, so the
    /// executed and modelled paths agree by construction).
    pub fn charge(&mut self, c: &BlockCost) {
        self.cost.merge(c);
    }

    /// `n` fused multiply-adds executed across the block's threads
    /// (2 flops each). One warp instruction retires 32 lanes of FMAs.
    #[inline]
    pub fn fma(&mut self, n_thread_ops: u64) {
        self.cost.flops += 2 * n_thread_ops;
        self.cost.issue_cycles += n_thread_ops as f64 / self.lanes / self.issue_eff;
    }

    /// `n` bookkeeping ops (loop counters, addressing, predicates): they
    /// occupy issue slots but are not counted as useful flops.
    #[inline]
    pub fn alu(&mut self, n_thread_ops: u64) {
        self.cost.issue_cycles += n_thread_ops as f64 / self.lanes / self.issue_eff;
    }

    /// Issue slots with *no* useful flops: idle lanes in a divergent or
    /// partially-filled warp still occupy the pipeline. `n` is counted in
    /// thread-slots (so a warp-wide step with 8 active lanes costs
    /// `idle(24)` next to `alu(8)`).
    #[inline]
    pub fn idle(&mut self, n_thread_slots: u64) {
        self.cost.issue_cycles += n_thread_slots as f64 / self.lanes / self.issue_eff;
    }

    /// `n` words read or written in shared memory (bank-conflict-free).
    #[inline]
    pub fn smem(&mut self, n_words: u64) {
        self.cost.smem_words += n_words;
        self.cost.issue_cycles += n_words as f64 / self.lanes * self.smem_cpw;
    }

    /// Global-memory traffic: `words` 4-byte words, `coalesced` when
    /// consecutive lanes touch consecutive addresses.
    #[inline]
    pub fn gmem(&mut self, words: u64, bytes_per_word: u64, coalesced: bool) {
        // f64 multiply: a huge modelled word count must degrade precision,
        // not wrap a u64 product.
        let raw = words as f64 * bytes_per_word as f64;
        let eff = if coalesced {
            raw
        } else {
            raw * self.uncoalesced
        };
        self.cost.gmem_bytes += eff;
        self.cost.issue_cycles += words as f64 / self.lanes * self.gmem_cpw;
    }

    /// Raw pipeline-stall cycles (dependency chains that issue nothing:
    /// norm/sqrt serialization in the factor kernels, reduction latency).
    #[inline]
    pub fn stall(&mut self, cycles: f64) {
        self.cost.issue_cycles += cycles;
    }

    /// One barrier.
    #[inline]
    pub fn sync(&mut self) {
        self.sync_n(1);
    }

    /// `n` barriers (aggregated charge for loop-heavy strategies).
    #[inline]
    pub fn sync_n(&mut self, n: u64) {
        self.cost.syncs += n;
        self.cost.issue_cycles += n as f64 * self.sync_cycles;
    }
}

/// Aggregated result of one kernel launch.
#[derive(Clone, Debug)]
pub struct KernelReport {
    /// Kernel name.
    pub name: &'static str,
    /// Number of thread blocks launched.
    pub blocks: usize,
    /// Modelled execution time in seconds (including launch overhead).
    pub seconds: f64,
    /// Sum of per-block costs.
    pub total: BlockCost,
    /// Achieved GFLOP/s according to the model.
    pub gflops: f64,
    /// True when the launch was limited by issue bandwidth rather than DRAM.
    pub compute_bound: bool,
    /// Stream index for asynchronous launches (`None` for synchronous ones).
    /// Async reports carry the contention-free time in `seconds`; the
    /// realized interval is produced by `Gpu::synchronize`.
    pub stream: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fma_counts_two_flops() {
        let spec = DeviceSpec::c2050();
        let mut m = CostMeter::new(&spec);
        m.fma(32);
        assert_eq!(m.cost.flops, 64);
        // 32 thread ops on 32 lanes ~ 1 cycle / issue efficiency.
        assert!((m.cost.issue_cycles - 1.0 / spec.issue_efficiency).abs() < 1e-12);
    }

    #[test]
    fn uncoalesced_traffic_is_amplified() {
        let spec = DeviceSpec::c2050();
        let mut m = CostMeter::new(&spec);
        m.gmem(10, 4, true);
        let coalesced = m.cost.gmem_bytes;
        m.reset();
        m.gmem(10, 4, false);
        assert!((m.cost.gmem_bytes - coalesced * spec.uncoalesced_factor).abs() < 1e-9);
    }

    #[test]
    fn smem_is_slower_than_register_compute() {
        let spec = DeviceSpec::c2050();
        let mut a = CostMeter::new(&spec);
        a.fma(1000);
        let mut b = CostMeter::new(&spec);
        b.fma(1000);
        b.smem(2000); // operand round-trips through shared memory
        assert!(b.cost.issue_cycles > 2.0 * a.cost.issue_cycles);
    }

    #[test]
    fn merge_adds_counts() {
        let spec = DeviceSpec::c2050();
        let mut a = CostMeter::new(&spec);
        a.fma(10);
        a.sync();
        let mut total = BlockCost::default();
        total.merge(&a.cost);
        total.merge(&a.cost);
        assert_eq!(total.flops, 40);
        assert_eq!(total.syncs, 2);
    }
}
