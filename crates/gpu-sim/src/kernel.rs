//! The kernel abstraction: a grid of independent thread blocks.
//!
//! A kernel supplies a [`LaunchConfig`] (grid size plus per-block resource
//! demands, which the device validates against its limits exactly like the
//! CUDA runtime would) and a `run_block` body. Blocks execute in parallel on
//! the rayon pool — the simulator's stand-in for the SM array — and each
//! records its operation counts in a [`BlockCtx`].

use crate::cost::CostMeter;
use crate::spec::DeviceSpec;
use dense::Scalar;

/// Grid and per-block resource demands of one launch.
#[derive(Clone, Copy, Debug)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub blocks: usize,
    /// Threads per block (the paper's kernels use 64).
    pub threads_per_block: usize,
    /// Static shared-memory request per block, bytes.
    pub shared_mem_bytes: usize,
    /// Registers per thread (4-byte registers).
    pub regs_per_thread: usize,
}

/// Error returned when a launch violates device limits — the analogue of
/// `cudaErrorInvalidConfiguration` / `cudaErrorLaunchOutOfResources`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LaunchError {
    /// Shared memory request exceeds per-SM capacity.
    SharedMemory {
        /// Bytes requested.
        requested: usize,
        /// Bytes available.
        available: usize,
    },
    /// Thread count exceeds the per-block maximum.
    Threads {
        /// Threads requested.
        requested: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// Register demand of one block exceeds the register file.
    Registers {
        /// Bytes of register file needed by one block.
        requested: usize,
        /// Bytes available per SM.
        available: usize,
    },
    /// Grid was empty.
    EmptyGrid,
    /// A simulated transient device fault persisted through every retry
    /// (see [`crate::fault::FaultPlan`]) — the analogue of
    /// `cudaErrorLaunchFailure` surviving the driver's resubmission.
    DeviceFault {
        /// Kernel that failed to launch.
        kernel: &'static str,
        /// Launch ordinal (0-based admission order) that faulted.
        launch_index: u64,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The launch hung on its final retry attempt and the deadline
    /// watchdog killed it — the analogue of `cudaErrorLaunchTimeout`.
    /// Earlier hung attempts were killed and resubmitted silently; this
    /// surfaces only once the retry budget is exhausted.
    Timeout {
        /// Kernel that hung.
        kernel: &'static str,
        /// Launch ordinal (0-based admission order) that hung.
        launch_index: u64,
        /// Watchdog deadline charged per hung attempt, microseconds.
        deadline_us: u64,
    },
    /// The whole device is gone (a simulated
    /// [`crate::fault::FaultKind::DeviceLoss`]) — the analogue of
    /// `cudaErrorDevicesUnavailable` after a node drops off the bus. Unlike
    /// transient faults there is no retry: this launch and every subsequent
    /// launch on the device fail until [`crate::Gpu::reset`] revives it.
    /// Multi-device drivers recover by failing the lost device's work over
    /// to a survivor (see `caqr::distributed`).
    DeviceLost {
        /// Kernel whose launch found the device gone.
        kernel: &'static str,
        /// Launch ordinal (0-based admission order) that hit the loss.
        launch_index: u64,
    },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::SharedMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "shared memory request {requested} B exceeds {available} B"
                )
            }
            LaunchError::Threads { requested, max } => {
                write!(f, "{requested} threads per block exceeds max {max}")
            }
            LaunchError::Registers {
                requested,
                available,
            } => {
                write!(
                    f,
                    "register demand {requested} B exceeds register file {available} B"
                )
            }
            LaunchError::EmptyGrid => write!(f, "kernel launched with an empty grid"),
            LaunchError::DeviceFault {
                kernel,
                launch_index,
                attempts,
            } => {
                write!(
                    f,
                    "device fault: kernel `{kernel}` (launch #{launch_index}) failed {attempts} attempts"
                )
            }
            LaunchError::Timeout {
                kernel,
                launch_index,
                deadline_us,
            } => {
                write!(
                    f,
                    "watchdog timeout: kernel `{kernel}` (launch #{launch_index}) hung past the {deadline_us} us deadline on every retry"
                )
            }
            LaunchError::DeviceLost {
                kernel,
                launch_index,
            } => {
                write!(
                    f,
                    "device lost: kernel `{kernel}` (launch #{launch_index}) found the device gone; all further launches fail until reset"
                )
            }
        }
    }
}

impl std::error::Error for LaunchError {}

impl LaunchConfig {
    /// Validate against a device, mirroring the CUDA runtime checks.
    pub fn validate(&self, spec: &DeviceSpec) -> Result<(), LaunchError> {
        if self.blocks == 0 {
            return Err(LaunchError::EmptyGrid);
        }
        if self.threads_per_block > spec.max_threads_per_block {
            return Err(LaunchError::Threads {
                requested: self.threads_per_block,
                max: spec.max_threads_per_block,
            });
        }
        if self.shared_mem_bytes > spec.smem_per_sm {
            return Err(LaunchError::SharedMemory {
                requested: self.shared_mem_bytes,
                available: spec.smem_per_sm,
            });
        }
        let reg_bytes = self.regs_per_thread * 4 * self.threads_per_block;
        if reg_bytes > spec.regfile_per_sm {
            return Err(LaunchError::Registers {
                requested: reg_bytes,
                available: spec.regfile_per_sm,
            });
        }
        Ok(())
    }

    /// How many blocks of this shape fit concurrently on one SM
    /// (the occupancy calculation; used for reporting and latency-hiding
    /// sanity checks, not for the issue-serialization timing model).
    pub fn blocks_per_sm(&self, spec: &DeviceSpec) -> usize {
        let by_smem = spec
            .smem_per_sm
            .checked_div(self.shared_mem_bytes)
            .unwrap_or(usize::MAX);
        let reg_bytes = self.regs_per_thread * 4 * self.threads_per_block;
        let by_regs = spec
            .regfile_per_sm
            .checked_div(reg_bytes)
            .unwrap_or(usize::MAX);
        // Fermi limit of 8 resident blocks and 1536 threads per SM.
        let by_threads = 1536 / self.threads_per_block.max(1);
        by_smem.min(by_regs).min(by_threads).min(8)
    }
}

/// Per-block execution context: the simulated fast memory plus the cost
/// meter. The `shared` arena is the block's shared memory; kernels must not
/// exceed their declared `shared_mem_bytes` (enforced by the launch code).
pub struct BlockCtx<T> {
    /// Shared-memory arena, `shared_mem_bytes / size_of::<T>()` elements.
    pub shared: Vec<T>,
    /// Operation counters for this block.
    pub meter: CostMeter,
}

/// A GPU kernel: configuration plus a per-block body.
///
/// `run_block` must touch only the tile(s) of global memory owned by
/// `block_idx` (see `dense::ptr::MatPtr` for the aliasing contract).
pub trait Kernel<T: Scalar>: Sync {
    /// Kernel name for reports and ledgers.
    fn name(&self) -> &'static str;
    /// Grid shape and resource demands.
    fn config(&self) -> LaunchConfig;
    /// Execute one thread block.
    fn run_block(&self, block_idx: usize, ctx: &mut BlockCtx<T>);
    /// Silent-data-corruption hook: perturb exactly one element of this
    /// launch's *output* using the deterministic payload `r` (see
    /// [`crate::fault::sdc_payload`]) to pick the target. Called by the
    /// device after the grid completes when the installed
    /// [`crate::FaultPlan`] injects [`crate::FaultKind::Sdc`] into this
    /// launch. Return `true` iff an element was actually corrupted (the
    /// ledger counts applied corruptions only). The default is a no-op:
    /// kernels with no host-visible output cannot be corrupted.
    fn inject_sdc(&self, _r: u64) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_oversized_smem() {
        let spec = DeviceSpec::c2050();
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 64,
            shared_mem_bytes: 64 * 1024,
            regs_per_thread: 16,
        };
        assert!(matches!(
            cfg.validate(&spec),
            Err(LaunchError::SharedMemory { .. })
        ));
    }

    #[test]
    fn validate_rejects_too_many_threads() {
        let spec = DeviceSpec::c2050();
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 1024,
            shared_mem_bytes: 0,
            regs_per_thread: 8,
        };
        assert!(matches!(
            cfg.validate(&spec),
            Err(LaunchError::Threads { .. })
        ));
    }

    #[test]
    fn validate_rejects_register_pressure() {
        let spec = DeviceSpec::c2050();
        // 512 threads * 128 regs * 4 B = 256 KB > 128 KB.
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 512,
            shared_mem_bytes: 0,
            regs_per_thread: 128,
        };
        assert!(matches!(
            cfg.validate(&spec),
            Err(LaunchError::Registers { .. })
        ));
    }

    #[test]
    fn validate_rejects_empty_grid() {
        let spec = DeviceSpec::c2050();
        let cfg = LaunchConfig {
            blocks: 0,
            threads_per_block: 64,
            shared_mem_bytes: 0,
            regs_per_thread: 8,
        };
        assert_eq!(cfg.validate(&spec), Err(LaunchError::EmptyGrid));
    }

    #[test]
    fn paper_block_shape_is_valid_and_occupies() {
        // The paper's 128x16 blocks with 64 threads: 2048 words of register
        // storage = 32 regs/thread plus scratch.
        let spec = DeviceSpec::c2050();
        let cfg = LaunchConfig {
            blocks: 100,
            threads_per_block: 64,
            shared_mem_bytes: 16 * 1024,
            regs_per_thread: 40,
        };
        cfg.validate(&spec).unwrap();
        let occ = cfg.blocks_per_sm(&spec);
        assert!(occ >= 3, "expected multiple resident blocks, got {occ}");
    }
}
