//! # gpu-sim — GPU execution-model simulator
//!
//! The paper's system is CUDA kernels on an NVIDIA C2050. This crate is the
//! substitution that makes the reproduction runnable without the hardware
//! (DESIGN.md §2): kernels written against the [`kernel::Kernel`] trait run
//! their *real* arithmetic, with thread blocks executing in parallel on the
//! rayon pool, while every block records its operation counts
//! ([`cost::CostMeter`]). The device ([`device::Gpu`]) converts those counts
//! into modelled seconds with a roofline + issue-serialization + launch
//! overhead model, so the paper's performance *shapes* are reproducible and
//! the numerics are exact.
//!
//! The same crate models the CPU side ([`cpu::CpuMachine`]) and the PCIe
//! link, which the MAGMA-style hybrid baseline needs.
//!
//! Work can also be submitted asynchronously on [`stream::StreamId`] queues
//! with [`stream::EventId`] cross-stream dependencies; the numerics still
//! run immediately (bit-identical to synchronous launches) while the
//! modelled timing is resolved by a discrete-event engine
//! ([`timeline`]) at [`device::Gpu::synchronize`], which also exports
//! Chrome `trace_event` JSON per stream.
//!
//! Multiple devices can be joined into an [`interconnect::Cluster`]: a
//! latency/bandwidth (alpha-beta + per-hop) link model over a ring or
//! binomial-tree [`interconnect::Topology`], with `send`/`recv`/
//! `broadcast`/`reduce` as first-class timed events on the same modelled
//! clock — the substrate for distributed CAQR (`caqr::distributed`).

#![warn(missing_docs)]

pub mod cost;
pub mod cpu;
pub mod device;
pub mod fault;
pub mod interconnect;
pub mod kernel;
pub mod ledger;
pub mod spec;
pub mod stream;
pub mod timeline;

pub use cost::{BlockCost, CostMeter, KernelReport};
pub use cpu::CpuMachine;
pub use device::{Exec, Gpu, DEFAULT_WATCHDOG_US};
pub use fault::{FaultKind, FaultPlan, RetryPolicy};
pub use interconnect::{Cluster, CommEvent, LinkSpec, NetTotals, Topology};
pub use kernel::{BlockCtx, Kernel, LaunchConfig, LaunchError};
pub use ledger::CostLedger;
pub use spec::{CpuSpec, DeviceSpec, PcieSpec};
pub use stream::{EventId, StreamId, WATCHDOG_STALL};
pub use timeline::{Interval, Timeline};
