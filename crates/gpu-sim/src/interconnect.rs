//! Multi-device interconnect: N simulated GPUs joined by a
//! latency/bandwidth link model on a shared discrete-event clock.
//!
//! # Model (DESIGN.md §11)
//!
//! A [`Cluster`] owns `P` [`Gpu`] devices plus one cluster-side clock per
//! device. Compute time accrues on each device's own ledger exactly as in
//! single-device runs and is *folded* into that device's cluster clock at
//! every [`Cluster::sync_device`]; communication time exists only on the
//! cluster clocks, so all single-device accounting invariants (flop
//! conservation, launch-count formulas, PCIe-free residency) hold verbatim
//! per device.
//!
//! A message of `b` payload bytes routed over `h` link hops costs
//!
//! ```text
//! alpha + h * hop + b / beta
//! ```
//!
//! — the classic latency/bandwidth (alpha-beta) model with a per-hop
//! store-and-forward term. Zero-byte messages still pay `alpha` (and the
//! hop latency): latency is exactly the term the CAQR reduction tree is
//! shaped to avoid, so it must never round to free. Hop counts come from
//! the [`Topology`]: a bidirectional ring uses the shorter arc, a binomial
//! tree embeds in the hypercube so the hop count between ranks is the
//! Hamming distance of their labels.
//!
//! Transfers are one-sided sends with rendezvous receives, after the simpy
//! HPL-AI simulator this module is patterned on: [`Cluster::send`] occupies
//! the sender's port for the full message duration and posts the arrival
//! time on the `(from, to)` channel; [`Cluster::recv`] advances the
//! receiver to that arrival (no cost if the message already landed).
//! [`Cluster::broadcast`] and [`Cluster::reduce`] compose these
//! point-to-point events along the topology (pipelined around the ring,
//! recursive doubling/halving on the binomial tree), so collectives are
//! first-class *timed* events, not analytic formulas.
//!
//! Every send is also counted (messages, bytes, hops, port seconds) on the
//! sending device's [`crate::CostLedger`] and appended to the cluster's
//! [`CommEvent`] log; `tests/simulator_invariants.rs` reconciles the two.

use crate::device::Gpu;
use crate::spec::DeviceSpec;
use crate::timeline::Interval;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};

/// Latency/bandwidth description of one interconnect link.
///
/// The shape mirrors [`crate::PcieSpec`]: a fixed per-message latency plus
/// a streaming bandwidth, extended with a per-hop store-and-forward term
/// for multi-hop routes.
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    /// Per-message software/injection latency (the alpha term), µs.
    pub alpha_us: f64,
    /// Streaming bandwidth (the 1/beta term), GB/s.
    pub beta_gbs: f64,
    /// Additional store-and-forward latency per link hop, µs.
    pub hop_us: f64,
}

impl LinkSpec {
    /// QDR InfiniBand as deployed on the 2010-era GPU clusters the paper's
    /// hardware lived in: ~2 µs injection latency, ~3.2 GB/s effective
    /// per-link bandwidth, ~0.5 µs per switch hop.
    pub fn infiniband_qdr() -> Self {
        LinkSpec {
            alpha_us: 2.0,
            beta_gbs: 3.2,
            hop_us: 0.5,
        }
    }

    /// Peer-to-peer DMA through a PCIe Gen2 switch: PCIe latency and
    /// bandwidth (cf. [`crate::PcieSpec::gen2_x16`]) with a 1 µs hop
    /// penalty per switch level.
    pub fn pcie_switch() -> Self {
        LinkSpec {
            alpha_us: 10.0,
            beta_gbs: 5.5,
            hop_us: 1.0,
        }
    }

    /// Modelled wall-clock seconds for one message of `bytes` payload over
    /// `hops` link hops: `alpha + hops*hop + bytes/beta`. Zero-byte
    /// messages still pay the latency terms.
    pub fn transfer_seconds(&self, bytes: u64, hops: usize) -> f64 {
        self.alpha_us * 1.0e-6
            + hops as f64 * self.hop_us * 1.0e-6
            + bytes as f64 / (self.beta_gbs * 1.0e9)
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        Self::infiniband_qdr()
    }
}

/// How the devices are wired: decides the hop count of each route and the
/// shape of the composed collectives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Bidirectional ring: route along the shorter arc; collectives
    /// pipeline around the ring (P−1 sequential point-to-point steps).
    Ring,
    /// Binomial tree embedded in the hypercube: the hop count between two
    /// ranks is the Hamming distance of their labels; collectives use
    /// recursive doubling/halving (⌈log₂ P⌉ rounds).
    BinomialTree,
}

impl Topology {
    /// Link hops on the route from `from` to `to` in a `p`-device cluster
    /// (0 when `from == to`).
    pub fn hops(&self, p: usize, from: usize, to: usize) -> usize {
        debug_assert!(from < p && to < p);
        if from == to {
            return 0;
        }
        match self {
            Topology::Ring => {
                let d = from.abs_diff(to);
                d.min(p - d)
            }
            Topology::BinomialTree => (from ^ to).count_ones() as usize,
        }
    }
}

/// One timed interconnect message, as recorded in the cluster's event log.
#[derive(Clone, Copy, Debug)]
pub struct CommEvent {
    /// Which collective (or plain send) produced this message.
    pub kind: &'static str,
    /// Sending device index.
    pub from: usize,
    /// Receiving device index.
    pub to: usize,
    /// Payload bytes.
    pub bytes: u64,
    /// Link hops on the route.
    pub hops: usize,
    /// Cluster-clock start time, seconds (the sender's clock at injection).
    pub start: f64,
    /// Cluster-clock completion time, seconds (arrival at the receiver).
    pub end: f64,
}

/// Totals over the cluster's communication event log.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NetTotals {
    /// Messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Link hops traversed, summed over messages.
    pub hops: u64,
    /// Seconds of port occupancy, summed over messages.
    pub seconds: f64,
}

/// Cluster-side mutable state, behind one lock: the per-device clocks and
/// the communication bookkeeping.
struct ClusterState {
    /// Cluster-absolute clock per device, seconds.
    clock: Vec<f64>,
    /// How much of each device's `Gpu::elapsed()` has been folded into its
    /// cluster clock (device ledgers keep running totals; the cluster
    /// folds deltas).
    folded: Vec<f64>,
    /// Total device-local compute/stall seconds folded per device.
    compute: Vec<f64>,
    /// Every message, in injection order.
    events: Vec<CommEvent>,
    /// Posted-but-unreceived arrival times per `(from, to)` channel.
    in_flight: BTreeMap<(usize, usize), VecDeque<f64>>,
    /// Resolved kernel intervals with their device and cluster-absolute
    /// offset (µs), for the multi-process chrome trace.
    spans: Vec<(usize, f64, Interval)>,
}

/// `P` simulated devices joined by a [`LinkSpec`] link model over a
/// [`Topology`], sharing one discrete-event cluster clock.
///
/// See the module docs for the timing model. The intended driving pattern
/// (used by `caqr::distributed`) is phase-structured: launch work on each
/// device's streams, [`Cluster::sync_device`] each device to fold its
/// modelled compute time onto the cluster clock, then exchange data with
/// [`Cluster::transfer`] / the collectives before the next phase.
pub struct Cluster {
    devices: Vec<Gpu>,
    link: LinkSpec,
    topology: Topology,
    state: Mutex<ClusterState>,
}

impl Cluster {
    /// Build a cluster of `p` identical devices (`p ≥ 1`).
    pub fn new(p: usize, spec: DeviceSpec, link: LinkSpec, topology: Topology) -> Self {
        assert!(p >= 1, "a cluster needs at least one device");
        Cluster {
            devices: (0..p).map(|_| Gpu::new(spec.clone())).collect(),
            link,
            topology,
            state: Mutex::new(ClusterState {
                clock: vec![0.0; p],
                folded: vec![0.0; p],
                compute: vec![0.0; p],
                events: Vec::new(),
                in_flight: BTreeMap::new(),
                spans: Vec::new(),
            }),
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True iff the cluster has no devices (never: `new` requires `p ≥ 1`).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Device `d`.
    pub fn device(&self, d: usize) -> &Gpu {
        &self.devices[d]
    }

    /// All devices, indexed by rank.
    pub fn devices(&self) -> &[Gpu] {
        &self.devices
    }

    /// The link model.
    pub fn link(&self) -> &LinkSpec {
        &self.link
    }

    /// The wiring.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Fold any device-ledger seconds not yet on the cluster clock of `d`.
    fn fold(&self, st: &mut ClusterState, d: usize) {
        let elapsed = self.devices[d].elapsed();
        let delta = elapsed - st.folded[d];
        if delta > 0.0 {
            st.clock[d] += delta;
            st.compute[d] += delta;
            st.folded[d] = elapsed;
        }
    }

    /// Synchronize device `d`'s streams, fold the resolved batch onto its
    /// cluster clock, and record the batch's intervals at cluster-absolute
    /// time for the trace. Returns the resolved [`crate::Timeline`].
    ///
    /// # Panics
    /// Panics if the device's stream queues deadlock (as
    /// [`Gpu::synchronize`] does).
    pub fn sync_device(&self, d: usize) -> crate::Timeline {
        let mut st = self.state.lock();
        // Fold everything charged before this batch (sync launches,
        // transfer costs, fault backoffs) so the batch lands after it.
        self.fold(&mut st, d);
        let offset_us = st.clock[d] * 1e6;
        let tl = self.devices[d].synchronize();
        for iv in &tl.intervals {
            st.spans.push((d, offset_us, iv.clone()));
        }
        self.fold(&mut st, d);
        tl
    }

    /// Post one message from `from` to `to` (`kind` labels it in the event
    /// log). The sender's port is occupied for the full modelled duration;
    /// the arrival is queued for a matching [`Cluster::recv`]. Returns the
    /// arrival time on the cluster clock. A self-send is free and posts no
    /// event.
    fn post(&self, kind: &'static str, from: usize, to: usize, bytes: u64) -> f64 {
        let mut st = self.state.lock();
        self.fold(&mut st, from);
        if from == to {
            return st.clock[from];
        }
        let hops = self.topology.hops(self.len(), from, to);
        let dur = self.link.transfer_seconds(bytes, hops);
        let start = st.clock[from];
        let end = start + dur;
        st.clock[from] = end;
        st.events.push(CommEvent {
            kind,
            from,
            to,
            bytes,
            hops,
            start,
            end,
        });
        st.in_flight.entry((from, to)).or_default().push_back(end);
        drop(st);
        self.devices[from].note_net_send(bytes, hops as u64, dur);
        end
    }

    /// Send `bytes` from device `from` to device `to` as one timed message.
    /// Occupies the sender until injection completes; pair with
    /// [`Cluster::recv`] on the receiving side. Returns the arrival time.
    pub fn send(&self, from: usize, to: usize, bytes: u64) -> f64 {
        self.post("send", from, to, bytes)
    }

    /// Receive the oldest in-flight message from `from` on device `to`:
    /// advances `to`'s cluster clock to the arrival time (no cost if it
    /// already passed). Returns `to`'s clock after the receive.
    ///
    /// # Panics
    /// Panics if no message from `from` to `to` is in flight — a matching
    /// [`Cluster::send`] must precede every `recv`.
    pub fn recv(&self, to: usize, from: usize) -> f64 {
        let mut st = self.state.lock();
        self.fold(&mut st, to);
        if from == to {
            return st.clock[to];
        }
        let arrival = st
            .in_flight
            .get_mut(&(from, to))
            .and_then(VecDeque::pop_front)
            .unwrap_or_else(|| panic!("recv({to} <- {from}) without a matching send"));
        st.clock[to] = st.clock[to].max(arrival);
        st.clock[to]
    }

    /// One rendezvous transfer: [`Cluster::send`] + [`Cluster::recv`].
    /// Returns the receiver's clock after arrival.
    pub fn transfer(&self, from: usize, to: usize, bytes: u64) -> f64 {
        let _ = self.send(from, to, bytes);
        self.recv(to, from)
    }

    /// Broadcast `bytes` from `root` to every device, as timed
    /// point-to-point messages shaped by the topology: pipelined around
    /// the ring, recursive doubling on the binomial tree. Returns the time
    /// the last device finishes.
    pub fn broadcast(&self, root: usize, bytes: u64) -> f64 {
        let p = self.len();
        match self.topology {
            Topology::Ring => {
                let mut cur = root;
                for i in 1..p {
                    let next = (root + i) % p;
                    let _ = self.post("bcast", cur, next, bytes);
                    self.recv(next, cur);
                    cur = next;
                }
            }
            Topology::BinomialTree => {
                // Round k: every rank within distance k of the root relays
                // to the rank k further along — ⌈log₂ p⌉ rounds.
                let mut k = 1usize;
                while k < p {
                    for r in 0..k.min(p) {
                        if r + k < p {
                            let src = (root + r) % p;
                            let dst = (root + r + k) % p;
                            let _ = self.post("bcast", src, dst, bytes);
                            self.recv(dst, src);
                        }
                    }
                    k <<= 1;
                }
            }
        }
        self.makespan()
    }

    /// Reduce `bytes`-sized contributions from every device onto `root`,
    /// as timed point-to-point messages shaped by the topology: a pipeline
    /// toward the root on the ring, recursive halving on the binomial
    /// tree (the shape CAQR's R-reduction uses). Returns the time the root
    /// holds the result.
    pub fn reduce(&self, root: usize, bytes: u64) -> f64 {
        let p = self.len();
        match self.topology {
            Topology::Ring => {
                for i in (1..p).rev() {
                    let src = (root + i) % p;
                    let dst = (root + i - 1) % p;
                    let _ = self.post("reduce", src, dst, bytes);
                    self.recv(dst, src);
                }
            }
            Topology::BinomialTree => {
                let mut k = 1usize;
                while k < p {
                    k <<= 1;
                }
                k >>= 1;
                // Rounds of recursive halving: ranks [k, 2k) fold into
                // ranks [0, k), relative to the root.
                while k >= 1 {
                    for r in k..(2 * k).min(p) {
                        let src = (root + r) % p;
                        let dst = (root + r - k) % p;
                        let _ = self.post("reduce", src, dst, bytes);
                        self.recv(dst, src);
                    }
                    if k == 1 {
                        break;
                    }
                    k >>= 1;
                }
            }
        }
        let mut st = self.state.lock();
        self.fold(&mut st, root);
        st.clock[root]
    }

    /// Cluster-clock time of device `d` (compute folded + communication).
    pub fn device_time(&self, d: usize) -> f64 {
        let mut st = self.state.lock();
        self.fold(&mut st, d);
        st.clock[d]
    }

    /// Cluster makespan: the maximum device clock after folding all
    /// devices' ledgers.
    pub fn makespan(&self) -> f64 {
        let mut st = self.state.lock();
        for d in 0..self.len() {
            self.fold(&mut st, d);
        }
        st.clock.iter().copied().fold(0.0, f64::max)
    }

    /// Device-local compute/stall seconds folded for device `d` so far.
    pub fn compute_seconds(&self, d: usize) -> f64 {
        let mut st = self.state.lock();
        self.fold(&mut st, d);
        st.compute[d]
    }

    /// Snapshot of the communication event log, in injection order.
    pub fn comm_events(&self) -> Vec<CommEvent> {
        self.state.lock().events.clone()
    }

    /// Totals over the event log (messages, bytes, hops, port seconds).
    pub fn net_totals(&self) -> NetTotals {
        let st = self.state.lock();
        let mut t = NetTotals::default();
        for e in &st.events {
            t.messages += 1;
            t.bytes += e.bytes;
            t.hops += e.hops as u64;
            t.seconds += e.end - e.start;
        }
        t
    }

    /// Export the whole cluster run as Chrome trace-event JSON: one
    /// process row per device (named after its spec), kernel intervals on
    /// their stream lanes at cluster-absolute time, plus an `interconnect`
    /// process whose named lanes are the active `(from, to)` channels.
    pub fn chrome_trace(&self) -> String {
        let st = self.state.lock();
        let p = self.len();
        let mut events: Vec<String> = Vec::new();
        for (d, gpu) in self.devices.iter().enumerate() {
            events.push(format!(
                "  {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {}, \
                 \"args\": {{\"name\": \"device{} ({})\"}}}}",
                d,
                d,
                gpu.spec().name
            ));
        }
        events.push(format!(
            "  {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {p}, \
             \"args\": {{\"name\": \"interconnect\"}}}}"
        ));
        // Channel lanes in first-use order.
        let mut lanes: Vec<(usize, usize)> = Vec::new();
        for e in &st.events {
            if !lanes.contains(&(e.from, e.to)) {
                lanes.push((e.from, e.to));
            }
        }
        for (tid, &(from, to)) in lanes.iter().enumerate() {
            events.push(format!(
                "  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {p}, \
                 \"tid\": {tid}, \"args\": {{\"name\": \"d{from}->d{to}\"}}}}"
            ));
        }
        for (d, offset_us, iv) in &st.spans {
            events.push(iv.chrome_event(*d, *offset_us));
        }
        for e in &st.events {
            let tid = lanes.iter().position(|l| *l == (e.from, e.to)).unwrap();
            events.push(format!(
                "  {{\"name\": \"{}\", \"cat\": \"net\", \"ph\": \"X\", \
                 \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": {}, \"tid\": {}, \
                 \"args\": {{\"from\": {}, \"to\": {}, \"bytes\": {}, \"hops\": {}}}}}",
                e.kind,
                e.start * 1e6,
                (e.end - e.start) * 1e6,
                p,
                tid,
                e.from,
                e.to,
                e.bytes,
                e.hops
            ));
        }
        format!("[\n{}\n]", events.join(",\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(p: usize, topo: Topology) -> Cluster {
        Cluster::new(p, DeviceSpec::c2050(), LinkSpec::infiniband_qdr(), topo)
    }

    #[test]
    fn ring_hops_take_the_shorter_arc() {
        let t = Topology::Ring;
        assert_eq!(t.hops(8, 0, 1), 1);
        assert_eq!(t.hops(8, 0, 7), 1, "wrap-around is one hop");
        assert_eq!(t.hops(8, 1, 5), 4);
        assert_eq!(t.hops(8, 3, 3), 0);
        // Symmetric.
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(t.hops(8, a, b), t.hops(8, b, a));
            }
        }
    }

    #[test]
    fn binomial_hops_are_hamming_distance() {
        let t = Topology::BinomialTree;
        assert_eq!(t.hops(8, 0, 1), 1);
        assert_eq!(t.hops(8, 0, 7), 3);
        assert_eq!(t.hops(8, 5, 6), 2); // 101 ^ 110 = 011
        assert_eq!(t.hops(8, 2, 2), 0);
    }

    #[test]
    fn send_recv_advances_both_clocks_by_the_alpha_beta_cost() {
        let c = cluster(2, Topology::Ring);
        let bytes = 1 << 20;
        let want = c.link().transfer_seconds(bytes, 1);
        let arrival = c.send(0, 1, bytes);
        assert!((arrival - want).abs() < 1e-15);
        let t1 = c.recv(1, 0);
        assert!((t1 - want).abs() < 1e-15);
        assert!((c.device_time(0) - want).abs() < 1e-15, "sender blocked");
    }

    #[test]
    fn recv_after_arrival_costs_nothing_extra() {
        let c = cluster(2, Topology::Ring);
        c.send(0, 1, 100);
        c.send(1, 0, 1 << 22); // receiver is busy sending a big message
        let busy = c.device_time(1);
        let t = c.recv(1, 0);
        assert!((t - busy).abs() < 1e-15, "message already landed");
    }

    #[test]
    fn zero_byte_message_still_pays_latency() {
        let c = cluster(4, Topology::BinomialTree);
        let t = c.transfer(0, 3, 0);
        let want = c.link().transfer_seconds(0, 2);
        assert!(t > 0.0);
        assert!((t - want).abs() < 1e-15);
    }

    #[test]
    fn self_send_is_free_and_unlogged() {
        let c = cluster(3, Topology::Ring);
        let t = c.transfer(1, 1, 1 << 20);
        assert_eq!(t, 0.0);
        assert!(c.comm_events().is_empty());
        assert_eq!(c.device(1).ledger().net_messages, 0);
    }

    #[test]
    #[should_panic(expected = "without a matching send")]
    fn recv_without_send_panics() {
        let c = cluster(2, Topology::Ring);
        c.recv(1, 0);
    }

    #[test]
    fn broadcast_reaches_every_device_on_both_topologies() {
        for topo in [Topology::Ring, Topology::BinomialTree] {
            let c = cluster(8, topo);
            let t = c.broadcast(0, 4096);
            assert!(t > 0.0);
            // Every non-root device received something.
            let ev = c.comm_events();
            for d in 1..8 {
                assert!(
                    ev.iter().any(|e| e.to == d),
                    "{topo:?}: device {d} never reached"
                );
            }
            // Binomial broadcast is log-depth: it beats the ring pipeline.
        }
        let ring = cluster(8, Topology::Ring);
        let tree = cluster(8, Topology::BinomialTree);
        assert!(tree.broadcast(0, 4096) < ring.broadcast(0, 4096));
    }

    #[test]
    fn reduce_collects_every_contribution_at_the_root() {
        for topo in [Topology::Ring, Topology::BinomialTree] {
            let c = cluster(8, topo);
            let t = c.reduce(2, 1024);
            assert!(t > 0.0);
            let ev = c.comm_events();
            // Every non-root rank sent exactly once.
            for r in 1..8 {
                let src = (2 + r) % 8;
                assert_eq!(
                    ev.iter().filter(|e| e.from == src).count(),
                    1,
                    "{topo:?}: rank {src}"
                );
            }
            assert!(ev.iter().all(|e| e.from != 2), "root only receives");
        }
    }

    #[test]
    fn ledger_counters_match_the_event_log() {
        let c = cluster(4, Topology::BinomialTree);
        c.broadcast(0, 1 << 16);
        c.reduce(0, 1 << 10);
        c.transfer(3, 1, 777);
        let ev = c.comm_events();
        for d in 0..4 {
            let l = c.device(d).ledger();
            let sent: Vec<_> = ev.iter().filter(|e| e.from == d).collect();
            assert_eq!(l.net_messages, sent.len() as u64);
            assert_eq!(l.net_bytes, sent.iter().map(|e| e.bytes).sum::<u64>());
            assert_eq!(l.net_hops, sent.iter().map(|e| e.hops as u64).sum::<u64>());
        }
    }

    #[test]
    fn comm_time_never_leaks_into_device_ledgers() {
        let c = cluster(4, Topology::Ring);
        c.broadcast(0, 1 << 20);
        for d in 0..4 {
            assert_eq!(c.device(d).ledger().seconds, 0.0);
        }
        assert!(c.makespan() > 0.0);
    }

    #[test]
    fn chrome_trace_names_devices_and_channels() {
        let c = cluster(2, Topology::Ring);
        c.transfer(0, 1, 4096);
        let s = c.chrome_trace();
        assert!(s.starts_with('[') && s.ends_with(']'));
        assert!(s.contains("\"interconnect\""));
        assert!(s.contains("d0->d1"));
        assert!(s.contains("device0 (C2050)"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }
}
