//! Discrete-event timeline engine: resolves queued stream operations into
//! modelled wall-clock intervals.
//!
//! # Concurrency model (DESIGN.md §5)
//!
//! Each queued kernel is two phases. The *overhead* phase (driver launch
//! latency) consumes no device resources, so overheads on different streams
//! overlap fully — this is where streams win on launch-bound tall-skinny
//! problems. The *body* phase carries the kernel's contention-free issue
//! time and DRAM time; while several bodies are resident the engine shares
//! the device between them:
//!
//! * **Issue ports.** Each kernel's weight is its SM footprint
//!   `min(blocks, sms) / sms`. With total footprint `D` over kernels that
//!   still have issue work, every such kernel progresses at rate
//!   `1 / max(1, D)` — concurrent small grids fill disjoint SMs for free,
//!   and oversubscription degrades everyone proportionally.
//! * **DRAM.** The roofline bandwidth is split evenly: with `k` kernels
//!   moving bytes, each progresses at rate `1/k`.
//!
//! Three properties follow, and are asserted by the property tests: a kernel
//! running alone finishes in exactly its synchronous time; a single stream
//! reproduces the synchronous sum; and the makespan never exceeds the sum of
//! the kernels' synchronous times (sharing preserves total throughput).
//!
//! Events are zero-duration: `Record` fires the instant all earlier ops in
//! its stream complete, and `Wait` releases as soon as its event has fired.
//! A `Wait` on an event that is never recorded is reported as a deadlock.

use crate::stream::{QueuedKernel, StreamOp};
use std::collections::HashMap;

/// Completion slop: work remainders below this many seconds count as done
/// (they arise only from floating-point cancellation in the engine).
const EPS: f64 = 1e-18;

/// One kernel's realized occupancy of its stream on the modelled timeline.
#[derive(Clone, Debug)]
pub struct Interval {
    /// Stream the kernel was launched on.
    pub stream: usize,
    /// Kernel name.
    pub name: &'static str,
    /// Modelled start time in seconds (launch overhead begins).
    pub start: f64,
    /// Modelled completion time in seconds.
    pub end: f64,
    /// What the same launch would have cost synchronously
    /// (overhead + max(issue, dram), no contention).
    pub alone_seconds: f64,
    /// Useful flops.
    pub flops: f64,
    /// DRAM bytes.
    pub bytes: f64,
    /// Thread blocks launched.
    pub blocks: usize,
}

impl Interval {
    /// Realized duration (`end - start`), including contention stretch.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Render as one Chrome trace-event object (`"ph":"X"`) under process
    /// `pid`, with the interval's batch-relative times shifted by
    /// `offset_us` microseconds. Multi-device traces place each device in
    /// its own process row by varying `pid` and use the offset to lift
    /// per-synchronize batches onto the cluster's absolute clock.
    pub fn chrome_event(&self, pid: usize, offset_us: f64) -> String {
        format!(
            concat!(
                "  {{\"name\": \"{}\", \"cat\": \"kernel\", \"ph\": \"X\", ",
                "\"ts\": {:.3}, \"dur\": {:.3}, \"pid\": {}, \"tid\": {}, ",
                "\"args\": {{\"blocks\": {}, \"flops\": {:.0}, ",
                "\"dram_bytes\": {:.0}, \"alone_us\": {:.3}}}}}"
            ),
            self.name,
            offset_us + self.start * 1e6,
            self.duration() * 1e6,
            pid,
            self.stream,
            self.blocks,
            self.flops,
            self.bytes,
            self.alone_seconds * 1e6,
        )
    }
}

/// The resolved timeline of one synchronize: per-kernel intervals plus the
/// overall makespan.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// Every kernel's interval, in completion order.
    pub intervals: Vec<Interval>,
    /// Time at which the last queued operation completed.
    pub makespan: f64,
}

impl Timeline {
    /// Total busy seconds of one stream lane: the sum of its intervals'
    /// realized durations (watchdog stalls included — a stalled stream is
    /// occupied, not idle).
    pub fn stream_busy(&self, stream: usize) -> f64 {
        self.intervals
            .iter()
            .filter(|iv| iv.stream == stream)
            .map(Interval::duration)
            .sum()
    }

    /// Mean busy fraction over `streams` lanes across the makespan, in
    /// `[0, 1]` — the lane-occupancy figure the chaos report prints.
    pub fn utilization(&self, streams: usize) -> f64 {
        if streams == 0 || self.makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = (0..streams).map(|s| self.stream_busy(s)).sum();
        busy / (streams as f64 * self.makespan)
    }

    /// Export as Chrome `chrome://tracing` / Perfetto trace-event JSON:
    /// one complete (`"ph":"X"`) event per kernel, streams as thread lanes.
    /// Load the string from a `.json` file via "Load trace".
    pub fn to_chrome_trace(&self) -> String {
        let events: Vec<String> = self
            .intervals
            .iter()
            .map(|iv| iv.chrome_event(0, 0.0))
            .collect();
        format!("[\n{}\n]", events.join(",\n"))
    }
}

/// A kernel currently occupying the head of its stream.
struct Active {
    stream: usize,
    k: QueuedKernel,
    start: f64,
    overhead_rem: f64,
    issue_rem: f64,
    dram_rem: f64,
}

impl Active {
    fn in_body(&self) -> bool {
        self.overhead_rem <= EPS
    }

    fn done(&self) -> bool {
        self.in_body() && self.issue_rem <= EPS && self.dram_rem <= EPS
    }
}

/// Resolve drained stream queues into a [`Timeline`]. Returns `Err` with a
/// description of the blocked streams if the queues deadlock (a `Wait` on an
/// event that is never recorded).
pub(crate) fn resolve(queues: Vec<Vec<StreamOp>>) -> Result<Timeline, String> {
    let n = queues.len();
    let mut cursor = vec![0usize; n];
    let mut active: Vec<Option<Active>> = (0..n).map(|_| None).collect();
    let mut fired: HashMap<u64, f64> = HashMap::new();
    let mut intervals = Vec::new();
    let mut now = 0.0f64;
    // Each engine step completes a phase or an op, so the step count is
    // bounded by a small multiple of the op count; anything beyond that is
    // an engine bug, not a legitimate schedule.
    let total_ops: usize = queues.iter().map(Vec::len).sum();
    let mut steps = 0usize;

    loop {
        // Retire zero-duration ops and admit head kernels until nothing
        // moves: a Record in one stream may release Waits in several others.
        let mut progressed = true;
        while progressed {
            progressed = false;
            for s in 0..n {
                if active[s].is_some() {
                    continue;
                }
                while cursor[s] < queues[s].len() {
                    match &queues[s][cursor[s]] {
                        StreamOp::Record(e) => {
                            fired.insert(e.0, now);
                            cursor[s] += 1;
                            progressed = true;
                        }
                        StreamOp::Wait(e) => {
                            if fired.contains_key(&e.0) {
                                cursor[s] += 1;
                                progressed = true;
                            } else {
                                break;
                            }
                        }
                        StreamOp::Kernel(k) => {
                            active[s] = Some(Active {
                                stream: s,
                                start: now,
                                overhead_rem: k.overhead,
                                issue_rem: k.issue_seconds,
                                dram_rem: k.dram_seconds,
                                k: k.clone(),
                            });
                            progressed = true;
                            break;
                        }
                    }
                }
            }
        }

        if active.iter().all(Option::is_none) {
            if cursor.iter().zip(&queues).all(|(c, q)| *c == q.len()) {
                break; // all streams drained
            }
            let blocked: Vec<String> = (0..n)
                .filter(|&s| cursor[s] < queues[s].len())
                .map(|s| match &queues[s][cursor[s]] {
                    StreamOp::Wait(e) => format!("stream {s} waiting on unrecorded event {}", e.0),
                    op => format!("stream {s} stuck at {op:?}"),
                })
                .collect();
            return Err(format!("stream deadlock: {}", blocked.join("; ")));
        }

        // Sharing rates for this step.
        let issue_load: f64 = active
            .iter()
            .flatten()
            .filter(|a| a.in_body() && a.issue_rem > EPS)
            .map(|a| a.k.sm_fraction)
            .sum();
        let issue_rate = 1.0 / issue_load.max(1.0);
        let dram_users = active
            .iter()
            .flatten()
            .filter(|a| a.in_body() && a.dram_rem > EPS)
            .count();
        let dram_rate = 1.0 / (dram_users.max(1) as f64);

        // Step to the next phase boundary.
        let mut dt = f64::INFINITY;
        for a in active.iter().flatten() {
            if !a.in_body() {
                dt = dt.min(a.overhead_rem);
            } else {
                if a.issue_rem > EPS {
                    dt = dt.min(a.issue_rem / issue_rate);
                }
                if a.dram_rem > EPS {
                    dt = dt.min(a.dram_rem / dram_rate);
                }
                if a.done() {
                    dt = 0.0;
                }
            }
        }
        debug_assert!(dt.is_finite(), "active kernel with no pending work");

        now += dt;
        for slot in active.iter_mut() {
            let Some(a) = slot else { continue };
            if !a.in_body() {
                a.overhead_rem -= dt;
            } else {
                if a.issue_rem > EPS {
                    a.issue_rem -= dt * issue_rate;
                }
                if a.dram_rem > EPS {
                    a.dram_rem -= dt * dram_rate;
                }
            }
            if a.done() {
                intervals.push(Interval {
                    stream: a.stream,
                    name: a.k.name,
                    start: a.start,
                    end: now,
                    alone_seconds: a.k.overhead + a.k.issue_seconds.max(a.k.dram_seconds),
                    flops: a.k.flops,
                    bytes: a.k.bytes,
                    blocks: a.k.blocks,
                });
                cursor[a.stream] += 1;
                *slot = None;
            }
        }

        steps += 1;
        assert!(
            steps <= 8 * total_ops + 16,
            "timeline engine failed to converge after {steps} steps"
        );
    }

    Ok(Timeline {
        intervals,
        makespan: now,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{EventId, QueuedKernel, StreamOp};

    fn kern(name: &'static str, overhead: f64, issue: f64, dram: f64, frac: f64) -> StreamOp {
        StreamOp::Kernel(QueuedKernel {
            name,
            blocks: 14,
            overhead,
            issue_seconds: issue,
            dram_seconds: dram,
            sm_fraction: frac,
            flops: 1.0e6,
            bytes: 1.0e3,
        })
    }

    #[test]
    fn single_stream_matches_synchronous_sum() {
        let q = vec![vec![
            kern("a", 25e-6, 100e-6, 40e-6, 1.0),
            kern("b", 25e-6, 10e-6, 80e-6, 0.5),
        ]];
        let t = resolve(q).unwrap();
        let want = (25e-6 + 100e-6) + (25e-6 + 80e-6);
        assert!(
            (t.makespan - want).abs() < 1e-12,
            "{} vs {want}",
            t.makespan
        );
        assert_eq!(t.intervals.len(), 2);
        // In-order, no overlap.
        assert!(t.intervals[0].end <= t.intervals[1].start + 1e-15);
    }

    #[test]
    fn disjoint_sm_footprints_overlap_for_free() {
        // Two compute-bound kernels, each filling half the SMs: together they
        // take the time of one, plus nothing for the second overhead (it
        // overlaps the first body).
        let q = vec![
            vec![kern("a", 25e-6, 100e-6, 0.0, 0.5)],
            vec![kern("b", 25e-6, 100e-6, 0.0, 0.5)],
        ];
        let t = resolve(q).unwrap();
        assert!((t.makespan - 125e-6).abs() < 1e-12, "{}", t.makespan);
    }

    #[test]
    fn oversubscribed_issue_ports_share_proportionally() {
        // Two full-device kernels: no speedup from streams (D = 2 halves the
        // rate), but no slowdown either — makespan equals the serial sum
        // minus the overlapped second overhead.
        let q = vec![
            vec![kern("a", 25e-6, 100e-6, 0.0, 1.0)],
            vec![kern("b", 25e-6, 100e-6, 0.0, 1.0)],
        ];
        let t = resolve(q).unwrap();
        assert!((t.makespan - 225e-6).abs() < 1e-12, "{}", t.makespan);
        let serial = 2.0 * 125e-6;
        assert!(t.makespan <= serial + 1e-15);
    }

    #[test]
    fn dram_is_shared_evenly() {
        let q = vec![
            vec![kern("a", 0.0, 0.0, 60e-6, 0.1)],
            vec![kern("b", 0.0, 0.0, 60e-6, 0.1)],
        ];
        let t = resolve(q).unwrap();
        // Each progresses at rate 1/2 → both finish at 120 µs.
        assert!((t.makespan - 120e-6).abs() < 1e-12, "{}", t.makespan);
    }

    #[test]
    fn events_order_cross_stream_work() {
        let e = EventId(0);
        let q = vec![
            vec![kern("a", 10e-6, 50e-6, 0.0, 1.0), StreamOp::Record(e)],
            vec![StreamOp::Wait(e), kern("b", 10e-6, 50e-6, 0.0, 1.0)],
        ];
        let t = resolve(q).unwrap();
        let a = t.intervals.iter().find(|iv| iv.name == "a").unwrap();
        let b = t.intervals.iter().find(|iv| iv.name == "b").unwrap();
        assert!(b.start >= a.end - 1e-15, "wait must order b after a");
        assert!((t.makespan - 120e-6).abs() < 1e-12);
    }

    #[test]
    fn unrecorded_event_is_a_deadlock() {
        let q = vec![vec![
            StreamOp::Wait(EventId(7)),
            kern("x", 1e-6, 1e-6, 0.0, 1.0),
        ]];
        let err = resolve(q).unwrap_err();
        assert!(err.contains("deadlock"), "{err}");
        assert!(err.contains("event 7"), "{err}");
    }

    #[test]
    fn chrome_trace_is_wellformed_json_shape() {
        let q = vec![
            vec![kern("factor", 25e-6, 100e-6, 10e-6, 1.0)],
            vec![kern("apply_qt_h", 25e-6, 50e-6, 10e-6, 0.5)],
        ];
        let t = resolve(q).unwrap();
        let s = t.to_chrome_trace();
        assert!(s.starts_with('[') && s.ends_with(']'));
        assert_eq!(s.matches("\"ph\": \"X\"").count(), 2);
        assert!(s.contains("\"name\": \"factor\""));
        assert!(s.contains("\"tid\": 1"));
        // Balanced braces (cheap well-formedness check without a parser).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn empty_queues_resolve_to_zero() {
        let t = resolve(vec![vec![], vec![]]).unwrap();
        assert_eq!(t.intervals.len(), 0);
        assert_eq!(t.makespan, 0.0);
    }
}
