//! The simulated GPU: executes kernels for real on the rayon pool and
//! converts their recorded operation counts into modelled time.
//!
//! # Timing model (DESIGN.md §5)
//!
//! * Each SM issues one warp instruction per cycle; blocks are assigned to
//!   SMs round-robin and serialize through the issue port, so
//!   `issue_time = max_sm(sum of its blocks' issue cycles) / clock`.
//!   This naturally penalizes launches with fewer blocks than SMs.
//! * DRAM is a shared resource: `dram_time = total_bytes / bandwidth`.
//! * A launch costs `overhead + max(issue_time, dram_time)` — the roofline.
//!
//! Kernels may also be launched in *model-only* mode ([`Gpu::launch_uniform`])
//! where the per-block cost is supplied analytically instead of being
//! recorded during execution; the `caqr` crate derives both from the same
//! cost functions so the two paths agree (tested in `caqr::kernels`).

use crate::cost::{BlockCost, CostMeter, KernelReport};
use crate::kernel::{BlockCtx, Kernel, LaunchConfig, LaunchError};
use crate::ledger::CostLedger;
use crate::spec::{DeviceSpec, PcieSpec};
use dense::Scalar;
use parking_lot::Mutex;
use rayon::prelude::*;

/// A simulated GPU with its modelled timeline.
pub struct Gpu {
    spec: DeviceSpec,
    pcie: PcieSpec,
    ledger: Mutex<CostLedger>,
}

impl Gpu {
    /// Create a device from a spec with a PCIe Gen2 x16 host link.
    pub fn new(spec: DeviceSpec) -> Self {
        Gpu {
            spec,
            pcie: PcieSpec::gen2_x16(),
            ledger: Mutex::new(CostLedger::default()),
        }
    }

    /// The device description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Snapshot of the modelled timeline.
    pub fn ledger(&self) -> CostLedger {
        self.ledger.lock().clone()
    }

    /// Modelled seconds elapsed so far.
    pub fn elapsed(&self) -> f64 {
        self.ledger.lock().seconds
    }

    /// Clear the timeline (between experiments).
    pub fn reset(&self) {
        *self.ledger.lock() = CostLedger::default();
    }

    /// Execute a kernel: all blocks run in parallel on the rayon pool, each
    /// with its own shared-memory arena and cost meter.
    pub fn launch<T: Scalar>(&self, kernel: &dyn Kernel<T>) -> Result<KernelReport, LaunchError> {
        let cfg = kernel.config();
        cfg.validate(&self.spec)?;
        let smem_elems = cfg.shared_mem_bytes / std::mem::size_of::<T>();
        let spec = &self.spec;

        let costs: Vec<BlockCost> = (0..cfg.blocks)
            .into_par_iter()
            .map_init(
                || BlockCtx {
                    shared: vec![T::ZERO; smem_elems],
                    meter: CostMeter::new(spec),
                },
                |ctx, b| {
                    ctx.meter.reset();
                    // A fresh block sees undefined shared memory; zeroing it
                    // keeps runs deterministic without charging the kernel.
                    ctx.shared.fill(T::ZERO);
                    kernel.run_block(b, ctx);
                    ctx.meter.cost
                },
            )
            .collect();

        let report = self.time_and_record(kernel.name(), &cfg, &costs);
        Ok(report)
    }

    /// Model-only launch with heterogeneous per-block costs (one entry per
    /// block, in grid order). Timing is identical to an executed launch with
    /// the same recorded costs — the model-vs-execution agreement tests in
    /// the `caqr` crate rely on this.
    pub fn launch_with_costs(
        &self,
        name: &'static str,
        cfg: LaunchConfig,
        costs: &[BlockCost],
    ) -> Result<KernelReport, LaunchError> {
        cfg.validate(&self.spec)?;
        assert_eq!(cfg.blocks, costs.len(), "one cost entry per block");
        Ok(self.time_and_record(name, &cfg, costs))
    }

    /// Model-only launch: charge `blocks` copies of an analytically derived
    /// per-block cost without executing anything. Used by the figure/table
    /// sweeps where real execution of terabyte-scale workloads would be
    /// pointless (the arithmetic is validated at smaller sizes).
    pub fn launch_uniform(
        &self,
        name: &'static str,
        cfg: LaunchConfig,
        per_block: &BlockCost,
    ) -> Result<KernelReport, LaunchError> {
        cfg.validate(&self.spec)?;
        // Avoid materializing huge vectors: the round-robin maximum for a
        // uniform grid is ceil(blocks / sms) blocks on the fullest SM.
        let sms = self.spec.sms;
        let fullest = cfg.blocks.div_ceil(sms);
        let issue_time = fullest as f64 * per_block.issue_cycles * self.spec.cycle_seconds();
        let total = BlockCost {
            flops: per_block.flops * cfg.blocks as u64,
            issue_cycles: per_block.issue_cycles * cfg.blocks as f64,
            gmem_bytes: per_block.gmem_bytes * cfg.blocks as f64,
            smem_words: per_block.smem_words * cfg.blocks as u64,
            syncs: per_block.syncs * cfg.blocks as u64,
        };
        let report = self.finish_launch(name, &cfg, total, issue_time);
        Ok(report)
    }

    fn time_and_record(&self, name: &'static str, cfg: &LaunchConfig, costs: &[BlockCost]) -> KernelReport {
        let sms = self.spec.sms;
        let mut sm_cycles = vec![0.0f64; sms];
        let mut total = BlockCost::default();
        for (b, c) in costs.iter().enumerate() {
            sm_cycles[b % sms] += c.issue_cycles;
            total.merge(c);
        }
        let issue_time = sm_cycles.iter().cloned().fold(0.0, f64::max) * self.spec.cycle_seconds();
        self.finish_launch(name, cfg, total, issue_time)
    }

    fn finish_launch(
        &self,
        name: &'static str,
        cfg: &LaunchConfig,
        total: BlockCost,
        issue_time: f64,
    ) -> KernelReport {
        let dram_time = total.gmem_bytes / (self.spec.dram_bw_gbs * 1.0e9);
        let body = issue_time.max(dram_time);
        let seconds = self.spec.launch_overhead_us * 1.0e-6 + body;
        let gflops = if seconds > 0.0 {
            total.flops as f64 / seconds / 1.0e9
        } else {
            0.0
        };
        self.ledger
            .lock()
            .record(name, seconds, total.flops as f64, total.gmem_bytes);
        KernelReport {
            name,
            blocks: cfg.blocks,
            seconds,
            total,
            gflops,
            compute_bound: issue_time >= dram_time,
        }
    }

    /// Charge a host-to-device PCIe transfer.
    pub fn transfer_h2d(&self, bytes: u64) -> f64 {
        let t = self.pcie.transfer_seconds(bytes);
        self.ledger.lock().record_transfer(t, bytes, true);
        t
    }

    /// Charge a device-to-host PCIe transfer.
    pub fn transfer_d2h(&self, bytes: u64) -> f64 {
        let t = self.pcie.transfer_seconds(bytes);
        self.ledger.lock().record_transfer(t, bytes, false);
        t
    }

    /// Charge host-side (CPU) work that sits on this device's critical path
    /// (e.g. the small SVD of `R` in the Robust PCA loop).
    pub fn host_work(&self, name: &'static str, seconds: f64, flops: f64) {
        self.ledger.lock().record(name, seconds, flops, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::{MatPtr, Matrix};

    /// Trivial kernel: each block scales its own 32-row tile by 2 and charges
    /// one fma per element.
    struct ScaleKernel {
        mat: MatPtr<f32>,
        tile_rows: usize,
        blocks: usize,
    }

    impl Kernel<f32> for ScaleKernel {
        fn name(&self) -> &'static str {
            "scale"
        }
        fn config(&self) -> LaunchConfig {
            LaunchConfig {
                blocks: self.blocks,
                threads_per_block: 64,
                shared_mem_bytes: 0,
                regs_per_thread: 8,
            }
        }
        fn run_block(&self, b: usize, ctx: &mut BlockCtx<f32>) {
            let r0 = b * self.tile_rows;
            let cols = self.mat.cols();
            for j in 0..cols {
                for i in 0..self.tile_rows {
                    // SAFETY: blocks own disjoint row tiles.
                    unsafe {
                        let v = self.mat.get(r0 + i, j);
                        self.mat.set(r0 + i, j, 2.0 * v);
                    }
                }
            }
            let elems = (self.tile_rows * cols) as u64;
            ctx.meter.gmem(elems, 4, true);
            ctx.meter.fma(elems);
            ctx.meter.gmem(elems, 4, true);
        }
    }

    #[test]
    fn launch_executes_and_times() {
        let gpu = Gpu::new(DeviceSpec::c2050());
        let mut m = Matrix::from_fn(256, 8, |i, j| (i + j) as f32);
        let orig = m.clone();
        let report = {
            let k = ScaleKernel {
                mat: MatPtr::new(&mut m),
                tile_rows: 32,
                blocks: 8,
            };
            gpu.launch(&k).unwrap()
        };
        // Real math happened.
        for i in 0..256 {
            for j in 0..8 {
                assert_eq!(m[(i, j)], 2.0 * orig[(i, j)]);
            }
        }
        // Costs recorded: 256*8 elements * 2 flops.
        assert_eq!(report.total.flops, 2 * 256 * 8);
        assert!(report.seconds > 0.0);
        assert_eq!(gpu.ledger().calls, 1);
    }

    #[test]
    fn more_blocks_scale_throughput_until_sms_saturate() {
        // Same per-block work; 1 block vs 14 blocks on a 14-SM device should
        // take the same modelled body time (perfect scaling), while 15 blocks
        // start a second wave.
        let gpu = Gpu::new(DeviceSpec::c2050());
        let cfg = |blocks| LaunchConfig {
            blocks,
            threads_per_block: 64,
            shared_mem_bytes: 0,
            regs_per_thread: 8,
        };
        let per_block = BlockCost {
            flops: 1_000_000,
            issue_cycles: 100_000.0,
            gmem_bytes: 0.0,
            smem_words: 0,
            syncs: 0,
        };
        let t1 = gpu.launch_uniform("k", cfg(1), &per_block).unwrap().seconds;
        let t14 = gpu.launch_uniform("k", cfg(14), &per_block).unwrap().seconds;
        let t15 = gpu.launch_uniform("k", cfg(15), &per_block).unwrap().seconds;
        let t28 = gpu.launch_uniform("k", cfg(28), &per_block).unwrap().seconds;
        assert!((t1 - t14).abs() < 1e-12, "1 and 14 blocks fill <= one block per SM");
        assert!(t15 > t14, "15th block starts a second wave");
        assert!((t28 - t15).abs() < 1e-12, "waves quantize");
    }

    #[test]
    fn dram_bound_launch_obeys_bandwidth_roofline() {
        let gpu = Gpu::new(DeviceSpec::c2050());
        let per_block = BlockCost {
            flops: 1000,
            issue_cycles: 10.0,
            gmem_bytes: 1.0e6, // 1 MB per block
            smem_words: 0,
            syncs: 0,
        };
        let cfg = LaunchConfig {
            blocks: 144,
            threads_per_block: 64,
            shared_mem_bytes: 0,
            regs_per_thread: 8,
        };
        let r = gpu.launch_uniform("bw", cfg, &per_block).unwrap();
        assert!(!r.compute_bound);
        // 144 MB / 144 GB/s = 1 ms.
        let want = 1.0e-3 + gpu.spec().launch_overhead_us * 1e-6;
        assert!((r.seconds - want).abs() / want < 1e-9, "got {}", r.seconds);
    }

    #[test]
    fn transfers_and_host_work_advance_the_clock() {
        let gpu = Gpu::new(DeviceSpec::c2050());
        let t0 = gpu.elapsed();
        gpu.transfer_h2d(1 << 20);
        gpu.host_work("svd_r", 5.0e-3, 1.0e6);
        gpu.transfer_d2h(1 << 10);
        assert!(gpu.elapsed() > t0 + 5.0e-3);
        let l = gpu.ledger();
        assert_eq!(l.h2d_bytes, 1 << 20);
        assert_eq!(l.d2h_bytes, 1 << 10);
        assert_eq!(l.transfers, 2);
        gpu.reset();
        assert_eq!(gpu.elapsed(), 0.0);
    }
}
