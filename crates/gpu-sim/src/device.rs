//! The simulated GPU: executes kernels for real on the rayon pool and
//! converts their recorded operation counts into modelled time.
//!
//! # Timing model (DESIGN.md §5)
//!
//! * Each SM issues one warp instruction per cycle; blocks are assigned to
//!   SMs round-robin and serialize through the issue port, so
//!   `issue_time = max_sm(sum of its blocks' issue cycles) / clock`.
//!   This naturally penalizes launches with fewer blocks than SMs.
//! * DRAM is a shared resource: `dram_time = total_bytes / bandwidth`.
//! * A launch costs `overhead + max(issue_time, dram_time)` — the roofline.
//!
//! Kernels may also be launched in *model-only* mode ([`Gpu::launch_uniform`])
//! where the per-block cost is supplied analytically instead of being
//! recorded during execution; the `caqr` crate derives both from the same
//! cost functions so the two paths agree (tested in `caqr::kernels`).

use crate::cost::{BlockCost, CostMeter, KernelReport};
use crate::fault::{self, FaultKind, FaultPlan, RetryPolicy};
use crate::kernel::{BlockCtx, Kernel, LaunchConfig, LaunchError};
use crate::ledger::CostLedger;
use crate::spec::{DeviceSpec, PcieSpec};
use crate::stream::{EventId, QueuedKernel, StreamId, StreamOp, StreamTable};
use crate::timeline::{self, Timeline};
use dense::Scalar;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// Where a launch goes: the synchronous timeline, or an asynchronous
/// stream queue. Lets algorithm code be written once and scheduled either
/// way (the `caqr` crate threads this through its kernel wrappers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Exec {
    /// Launch synchronously: time and record immediately.
    Sync,
    /// Enqueue on a stream: numerics run now, timing resolves at
    /// [`Gpu::synchronize`].
    Stream(StreamId),
}

/// Installed fault-injection state: the plan, the retry policy, and the
/// admission-order launch counter the plan indexes by.
struct FaultState {
    plan: FaultPlan,
    policy: RetryPolicy,
    next_launch: u64,
}

/// What admission decided about one launch beyond pass/fail: a pending
/// silent-data-corruption payload (the launch runs, then one output element
/// is perturbed) and accumulated watchdog stall from hung attempts that
/// were killed and resubmitted before one finally completed.
struct Admission {
    sdc: Option<u64>,
    stall_seconds: f64,
}

impl Admission {
    const CLEAN: Admission = Admission {
        sdc: None,
        stall_seconds: 0.0,
    };
}

/// Default watchdog deadline for hung launches, microseconds. Generous
/// relative to the sub-millisecond kernels the paper's grids produce, so
/// the watchdog never fires on healthy work.
pub const DEFAULT_WATCHDOG_US: f64 = 10_000.0;

/// A simulated GPU with its modelled timeline.
pub struct Gpu {
    spec: DeviceSpec,
    pcie: PcieSpec,
    ledger: Mutex<CostLedger>,
    streams: Mutex<StreamTable>,
    fault: Mutex<Option<FaultState>>,
    watchdog_us: Mutex<f64>,
    /// Set when a `FaultKind::DeviceLoss` fires: the device is gone and
    /// every subsequent admission fails with [`LaunchError::DeviceLost`]
    /// until [`Gpu::reset`] revives it.
    lost: AtomicBool,
}

impl Gpu {
    /// Create a device from a spec with a PCIe Gen2 x16 host link.
    pub fn new(spec: DeviceSpec) -> Self {
        Gpu {
            spec,
            pcie: PcieSpec::gen2_x16(),
            ledger: Mutex::new(CostLedger::default()),
            streams: Mutex::new(StreamTable::default()),
            fault: Mutex::new(None),
            watchdog_us: Mutex::new(DEFAULT_WATCHDOG_US),
            lost: AtomicBool::new(false),
        }
    }

    /// The deadline after which the watchdog declares a launch hung,
    /// microseconds.
    pub fn watchdog_deadline_us(&self) -> f64 {
        *self.watchdog_us.lock()
    }

    /// Set the watchdog deadline (clamped to at least 1 µs). Each hung
    /// attempt charges this deadline as stall time before the kill +
    /// resubmit; a launch hanging on its final attempt surfaces
    /// [`LaunchError::Timeout`].
    pub fn set_watchdog_deadline_us(&self, us: f64) {
        *self.watchdog_us.lock() = us.max(1.0);
    }

    /// Install a fault-injection plan with the default [`RetryPolicy`].
    /// Launches are numbered from 0 in admission order from this call on.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.set_fault_plan_with_policy(plan, RetryPolicy::default());
    }

    /// Install a fault-injection plan with an explicit retry policy.
    pub fn set_fault_plan_with_policy(&self, plan: FaultPlan, policy: RetryPolicy) {
        *self.fault.lock() = Some(FaultState {
            plan,
            policy,
            next_launch: 0,
        });
    }

    /// Remove any installed fault plan; subsequent launches always succeed.
    pub fn clear_fault_plan(&self) {
        *self.fault.lock() = None;
    }

    /// Admit one launch under the installed fault plan (if any).
    ///
    /// * **Launch failures** charge the wasted submission overhead plus an
    ///   exponential host backoff to the ledger, then the launch is
    ///   resubmitted. They fire **before** any block executes — the CUDA
    ///   analogue is a launch failure reported at submission — so in-place
    ///   kernels are never partially applied and a retried run is
    ///   bit-identical to a fault-free one.
    /// * **Hangs** are killed by the deadline watchdog: each hung attempt
    ///   accumulates `overhead + deadline + backoff` of stall (returned in
    ///   the [`Admission`] so the caller charges it on the right timeline —
    ///   global clock when synchronous, the stream's lane when queued) and
    ///   is resubmitted under the same retry budget. Kill + resubmit is
    ///   safe for the same reason launch-failure retry is: a hung launch
    ///   never commits partial output in this model.
    /// * **SDC** admits the launch normally and returns the deterministic
    ///   corruption payload; the launch path applies it to the kernel's
    ///   output after the grid completes.
    ///
    /// Exhausting the budget returns [`LaunchError::Timeout`] when the
    /// final attempt hung, [`LaunchError::DeviceFault`] otherwise — in both
    /// cases with device memory untouched by this launch.
    ///
    /// **Device loss** is different in kind: the faulted launch returns
    /// [`LaunchError::DeviceLost`] with *no* retry (a dead device does not
    /// answer resubmissions), the device is marked lost, and every later
    /// admission fails the same way until [`Gpu::reset`]. Launch ordinals
    /// keep counting on a lost device so fault plans stay aligned.
    fn admit(&self, name: &'static str) -> Result<Admission, LaunchError> {
        let mut guard = self.fault.lock();
        if self.lost.load(Ordering::Relaxed) {
            let idx = guard.as_mut().map_or(0, |state| {
                let i = state.next_launch;
                state.next_launch += 1;
                i
            });
            return Err(LaunchError::DeviceLost {
                kernel: name,
                launch_index: idx,
            });
        }
        let Some(state) = guard.as_mut() else {
            return Ok(Admission::CLEAN);
        };
        let idx = state.next_launch;
        state.next_launch += 1;
        let max = state.policy.max_attempts.max(1);
        let overhead = self.spec.launch_overhead_us * 1.0e-6;
        let deadline_us = *self.watchdog_us.lock();
        let mut stall_seconds = 0.0;
        let mut hung_last = false;
        for attempt in 0..max {
            let kind = state.plan.fault_kind(idx, attempt);
            match kind {
                None | Some(FaultKind::Sdc) => {
                    if attempt > 0 {
                        self.ledger.lock().retries += 1;
                    }
                    return Ok(Admission {
                        sdc: kind.map(|_| fault::sdc_payload(idx, attempt)),
                        stall_seconds,
                    });
                }
                Some(FaultKind::LaunchFail) => {
                    hung_last = false;
                    self.ledger
                        .lock()
                        .record_fault(overhead + state.policy.backoff_seconds(attempt));
                }
                Some(FaultKind::Hang) => {
                    hung_last = true;
                    stall_seconds +=
                        overhead + deadline_us * 1.0e-6 + state.policy.backoff_seconds(attempt);
                    self.ledger.lock().record_hang();
                }
                Some(FaultKind::HostPanic) => {
                    // The *host* thread driving this launch dies: unwind
                    // instead of returning, exactly where a crashed worker
                    // would take down its submission path. A supervisor
                    // (e.g. the service worker loop) catches the unwind and
                    // respawns; launch ordinals keep counting so the plan
                    // stays aligned for the replay.
                    panic!("injected host panic: launch #{idx} of kernel `{name}`");
                }
                Some(FaultKind::DeviceLoss) => {
                    // The device is gone. Charge any stall spent discovering
                    // earlier hung attempts, mark the device dead, and fail
                    // without retrying — resubmission cannot reach it.
                    self.lost.store(true, Ordering::Relaxed);
                    let mut ledger = self.ledger.lock();
                    if stall_seconds > 0.0 {
                        ledger.record_stall(stall_seconds, true);
                    }
                    ledger.record_device_loss();
                    return Err(LaunchError::DeviceLost {
                        kernel: name,
                        launch_index: idx,
                    });
                }
            }
        }
        // The stall spent discovering the hang is real wall-clock even
        // though the launch ultimately fails; charge it before surfacing.
        if stall_seconds > 0.0 {
            self.ledger.lock().record_stall(stall_seconds, true);
        }
        Err(if hung_last {
            LaunchError::Timeout {
                kernel: name,
                launch_index: idx,
                deadline_us: deadline_us as u64,
            }
        } else {
            LaunchError::DeviceFault {
                kernel: name,
                launch_index: idx,
                attempts: max,
            }
        })
    }

    /// The device description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Snapshot of the modelled timeline.
    pub fn ledger(&self) -> CostLedger {
        self.ledger.lock().clone()
    }

    /// Modelled seconds elapsed so far.
    pub fn elapsed(&self) -> f64 {
        self.ledger.lock().seconds
    }

    /// Has this device been lost to a `FaultKind::DeviceLoss`? A lost
    /// device rejects every launch with [`LaunchError::DeviceLost`] until
    /// [`Gpu::reset`] revives it.
    pub fn is_lost(&self) -> bool {
        self.lost.load(Ordering::Relaxed)
    }

    /// Record that this device adopted a lost device's workload as the
    /// failover survivor (tier-4 recovery; called by multi-device drivers).
    pub fn note_device_failover(&self) {
        self.ledger.lock().record_device_failover();
    }

    /// Record one interconnect message sent by this device (counts only;
    /// the cluster clock owns the modelled communication time). Called by
    /// `gpu_sim::interconnect::Cluster` on every send.
    pub fn note_net_send(&self, bytes: u64, hops: u64, seconds: f64) {
        self.ledger.lock().record_net_send(bytes, hops, seconds);
    }

    /// Clear the timeline (between experiments). Also discards all streams
    /// and any launches queued but not yet synchronized, and revives a
    /// lost device (the simulation analogue of replacing the node).
    pub fn reset(&self) {
        *self.ledger.lock() = CostLedger::default();
        *self.streams.lock() = StreamTable::default();
        self.lost.store(false, Ordering::Relaxed);
        // Keep any installed fault plan but restart its launch numbering so
        // repeated experiments see identical fault schedules.
        if let Some(state) = self.fault.lock().as_mut() {
            state.next_launch = 0;
        }
    }

    /// Execute a kernel: all blocks run in parallel on the rayon pool, each
    /// with its own shared-memory arena and cost meter.
    pub fn launch<T: Scalar>(&self, kernel: &dyn Kernel<T>) -> Result<KernelReport, LaunchError> {
        let cfg = kernel.config();
        cfg.validate(&self.spec)?;
        let adm = self.admit(kernel.name())?;
        if adm.stall_seconds > 0.0 {
            // Synchronous launch: watchdog stall from killed hung attempts
            // advances the global clock directly.
            self.ledger.lock().record_stall(adm.stall_seconds, true);
        }
        let costs = self.execute_blocks(kernel, &cfg);
        self.apply_sdc(kernel, &adm);
        let report = self.time_and_record(kernel.name(), &cfg, &costs);
        Ok(report)
    }

    /// Apply a pending silent-data-corruption payload to a completed
    /// launch's output, counting it only if the kernel actually perturbed
    /// an element.
    fn apply_sdc<T: Scalar>(&self, kernel: &dyn Kernel<T>, adm: &Admission) {
        if let Some(r) = adm.sdc {
            if kernel.inject_sdc(r) {
                self.ledger.lock().record_sdc();
            }
        }
    }

    /// Run every block of a validated launch on the rayon pool, returning
    /// the per-block recorded costs in grid order.
    fn execute_blocks<T: Scalar>(
        &self,
        kernel: &dyn Kernel<T>,
        cfg: &LaunchConfig,
    ) -> Vec<BlockCost> {
        let smem_elems = cfg.shared_mem_bytes / std::mem::size_of::<T>();
        let spec = &self.spec;
        (0..cfg.blocks)
            .into_par_iter()
            .map_init(
                || BlockCtx {
                    shared: vec![T::ZERO; smem_elems],
                    meter: CostMeter::new(spec),
                },
                |ctx, b| {
                    ctx.meter.reset();
                    // A fresh block sees undefined shared memory; zeroing it
                    // keeps runs deterministic without charging the kernel.
                    ctx.shared.fill(T::ZERO);
                    kernel.run_block(b, ctx);
                    ctx.meter.cost
                },
            )
            .collect()
    }

    /// Model-only launch with heterogeneous per-block costs (one entry per
    /// block, in grid order). Timing is identical to an executed launch with
    /// the same recorded costs — the model-vs-execution agreement tests in
    /// the `caqr` crate rely on this.
    pub fn launch_with_costs(
        &self,
        name: &'static str,
        cfg: LaunchConfig,
        costs: &[BlockCost],
    ) -> Result<KernelReport, LaunchError> {
        cfg.validate(&self.spec)?;
        let adm = self.admit(name)?;
        if adm.stall_seconds > 0.0 {
            self.ledger.lock().record_stall(adm.stall_seconds, true);
        }
        // Model-only launches have no output to corrupt; an admitted SDC
        // payload is dropped (and not counted as injected).
        assert_eq!(cfg.blocks, costs.len(), "one cost entry per block");
        Ok(self.time_and_record(name, &cfg, costs))
    }

    /// Model-only launch: charge `blocks` copies of an analytically derived
    /// per-block cost without executing anything. Used by the figure/table
    /// sweeps where real execution of terabyte-scale workloads would be
    /// pointless (the arithmetic is validated at smaller sizes).
    pub fn launch_uniform(
        &self,
        name: &'static str,
        cfg: LaunchConfig,
        per_block: &BlockCost,
    ) -> Result<KernelReport, LaunchError> {
        cfg.validate(&self.spec)?;
        let adm = self.admit(name)?;
        if adm.stall_seconds > 0.0 {
            self.ledger.lock().record_stall(adm.stall_seconds, true);
        }
        // Avoid materializing huge vectors: the round-robin maximum for a
        // uniform grid is ceil(blocks / sms) blocks on the fullest SM.
        let sms = self.spec.sms;
        let fullest = cfg.blocks.div_ceil(sms);
        let issue_time = fullest as f64 * per_block.issue_cycles * self.spec.cycle_seconds();
        let total = BlockCost {
            flops: per_block.flops * cfg.blocks as u64,
            issue_cycles: per_block.issue_cycles * cfg.blocks as f64,
            gmem_bytes: per_block.gmem_bytes * cfg.blocks as f64,
            smem_words: per_block.smem_words * cfg.blocks as u64,
            syncs: per_block.syncs * cfg.blocks as u64,
        };
        let report = self.finish_launch(name, &cfg, total, issue_time);
        Ok(report)
    }

    fn time_and_record(
        &self,
        name: &'static str,
        cfg: &LaunchConfig,
        costs: &[BlockCost],
    ) -> KernelReport {
        let (total, issue_time) = self.aggregate(costs);
        self.finish_launch(name, cfg, total, issue_time)
    }

    /// Sum per-block costs and compute the round-robin issue time — the one
    /// timing computation shared by the synchronous and stream paths, so a
    /// kernel costs exactly the same alone either way.
    fn aggregate(&self, costs: &[BlockCost]) -> (BlockCost, f64) {
        let sms = self.spec.sms;
        let mut sm_cycles = vec![0.0f64; sms];
        let mut total = BlockCost::default();
        for (b, c) in costs.iter().enumerate() {
            sm_cycles[b % sms] += c.issue_cycles;
            total.merge(c);
        }
        let issue_time = sm_cycles.iter().cloned().fold(0.0, f64::max) * self.spec.cycle_seconds();
        (total, issue_time)
    }

    fn finish_launch(
        &self,
        name: &'static str,
        cfg: &LaunchConfig,
        total: BlockCost,
        issue_time: f64,
    ) -> KernelReport {
        let dram_time = total.gmem_bytes / (self.spec.dram_bw_gbs * 1.0e9);
        let body = issue_time.max(dram_time);
        let seconds = self.spec.launch_overhead_us * 1.0e-6 + body;
        let gflops = if seconds > 0.0 {
            total.flops as f64 / seconds / 1.0e9
        } else {
            0.0
        };
        self.ledger
            .lock()
            .record(name, seconds, total.flops as f64, total.gmem_bytes);
        KernelReport {
            name,
            blocks: cfg.blocks,
            seconds,
            total,
            gflops,
            compute_bound: issue_time >= dram_time,
            stream: None,
        }
    }

    // ---- streams & events -------------------------------------------------

    /// Create a new asynchronous launch queue. Streams survive
    /// [`Self::synchronize`] (their queues restart empty) but not
    /// [`Self::reset`].
    pub fn create_stream(&self) -> StreamId {
        self.streams.lock().create_stream()
    }

    /// Record an event into `stream`: it fires (on the modelled timeline)
    /// when every operation queued on `stream` before it has completed.
    pub fn record_event(&self, stream: StreamId) -> EventId {
        let mut table = self.streams.lock();
        let event = table.alloc_event();
        table.push(stream, StreamOp::Record(event));
        event
    }

    /// Make `stream` wait for `event` before running anything queued after
    /// this call. Waiting on an event that is never recorded deadlocks the
    /// schedule, which [`Self::synchronize`] reports by panicking.
    pub fn wait_event(&self, stream: StreamId, event: EventId) {
        self.streams.lock().push(stream, StreamOp::Wait(event));
    }

    /// Asynchronous kernel launch. The kernel's arithmetic executes
    /// immediately on the rayon pool — host enqueue order is a valid
    /// topological order of any stream/event DAG, so results are
    /// bit-identical to synchronous launches — while its *timing* is queued
    /// on `stream` and resolved by the next [`Self::synchronize`].
    ///
    /// The returned report carries the contention-free (`alone`) time; the
    /// realized interval, stretched by whatever overlaps it, lands in the
    /// [`Timeline`].
    pub fn launch_async<T: Scalar>(
        &self,
        stream: StreamId,
        kernel: &dyn Kernel<T>,
    ) -> Result<KernelReport, LaunchError> {
        let cfg = kernel.config();
        cfg.validate(&self.spec)?;
        let adm = self.admit(kernel.name())?;
        let costs = self.execute_blocks(kernel, &cfg);
        self.apply_sdc(kernel, &adm);
        Ok(self.enqueue(stream, kernel.name(), &cfg, &costs, adm.stall_seconds))
    }

    /// Model-only asynchronous launch with heterogeneous per-block costs:
    /// the stream counterpart of [`Self::launch_with_costs`].
    pub fn launch_with_costs_async(
        &self,
        stream: StreamId,
        name: &'static str,
        cfg: LaunchConfig,
        costs: &[BlockCost],
    ) -> Result<KernelReport, LaunchError> {
        cfg.validate(&self.spec)?;
        let adm = self.admit(name)?;
        assert_eq!(cfg.blocks, costs.len(), "one cost entry per block");
        Ok(self.enqueue(stream, name, &cfg, costs, adm.stall_seconds))
    }

    /// Launch via an [`Exec`] policy: synchronously, or on a stream.
    pub fn launch_on<T: Scalar>(
        &self,
        exec: Exec,
        kernel: &dyn Kernel<T>,
    ) -> Result<KernelReport, LaunchError> {
        match exec {
            Exec::Sync => self.launch(kernel),
            Exec::Stream(s) => self.launch_async(s, kernel),
        }
    }

    /// Model-only launch via an [`Exec`] policy.
    pub fn launch_with_costs_on(
        &self,
        exec: Exec,
        name: &'static str,
        cfg: LaunchConfig,
        costs: &[BlockCost],
    ) -> Result<KernelReport, LaunchError> {
        match exec {
            Exec::Sync => self.launch_with_costs(name, cfg, costs),
            Exec::Stream(s) => self.launch_with_costs_async(s, name, cfg, costs),
        }
    }

    fn enqueue(
        &self,
        stream: StreamId,
        name: &'static str,
        cfg: &LaunchConfig,
        costs: &[BlockCost],
        stall_seconds: f64,
    ) -> KernelReport {
        let (total, issue_time) = self.aggregate(costs);
        let dram_time = total.gmem_bytes / (self.spec.dram_bw_gbs * 1.0e9);
        let overhead = self.spec.launch_overhead_us * 1.0e-6;
        let alone = overhead + issue_time.max(dram_time);
        if stall_seconds > 0.0 {
            // Watchdog stall from killed hung attempts occupies this
            // stream's lane ahead of the resubmitted kernel; it resolves
            // into a `watchdog_stall` interval at synchronize and is
            // attributed as a stall, never as a kernel call.
            self.streams
                .lock()
                .push(stream, StreamOp::Kernel(QueuedKernel::stall(stall_seconds)));
        }
        self.streams.lock().push(
            stream,
            StreamOp::Kernel(QueuedKernel {
                name,
                blocks: cfg.blocks,
                overhead,
                issue_seconds: issue_time,
                dram_seconds: dram_time,
                sm_fraction: cfg.blocks.min(self.spec.sms) as f64 / self.spec.sms as f64,
                flops: total.flops as f64,
                bytes: total.gmem_bytes,
            }),
        );
        KernelReport {
            name,
            blocks: cfg.blocks,
            seconds: alone,
            total,
            gflops: if alone > 0.0 {
                total.flops as f64 / alone / 1.0e9
            } else {
                0.0
            },
            compute_bound: issue_time >= dram_time,
            stream: Some(stream.index()),
        }
    }

    /// Resolve every queued stream operation into modelled time. Kernel
    /// flops/bytes/calls are attributed to the ledger per kernel; the global
    /// clock advances by the batch's makespan (concurrent kernels overlap).
    /// The resolved per-kernel intervals are returned and also appended to
    /// the ledger.
    ///
    /// # Panics
    ///
    /// If the queues deadlock (a wait on an event that is never recorded).
    pub fn synchronize(&self) -> Timeline {
        self.try_synchronize()
            .unwrap_or_else(|e| panic!("Gpu::synchronize: {e}"))
    }

    /// Non-panicking [`Self::synchronize`]: returns the schedule error (a
    /// deadlock description) instead of aborting, so library callers can
    /// surface it as a typed error.
    #[must_use = "dropping the Result loses both the resolved Timeline and any deadlock report"]
    pub fn try_synchronize(&self) -> Result<Timeline, String> {
        let queues = self.streams.lock().drain();
        let tl = timeline::resolve(queues)?;
        let mut ledger = self.ledger.lock();
        for iv in &tl.intervals {
            if iv.name == crate::stream::WATCHDOG_STALL {
                // Stall pseudo-ops occupy their lane but did no work: they
                // are attributed as stalls (the makespan below already
                // advances the clock through them), never as kernel calls.
                ledger.record_stall(iv.duration(), false);
            } else {
                ledger.record_span(iv.name, iv.duration(), iv.flops, iv.bytes);
            }
        }
        ledger.record_idle(tl.makespan);
        ledger.intervals.extend(tl.intervals.iter().cloned());
        Ok(tl)
    }

    // ---- recovery accounting ---------------------------------------------

    /// Ledger hook for tier-1 recovery: one task replayed in place.
    pub fn note_task_replay(&self) {
        self.ledger.lock().record_task_replay();
    }

    /// Ledger hook for tier-2 recovery: one panel rolled back + refactored.
    pub fn note_panel_replay(&self) {
        self.ledger.lock().record_panel_replay();
    }

    /// Ledger hook for tier-3 recovery: one whole-run retry.
    pub fn note_run_retry(&self) {
        self.ledger.lock().record_run_retry();
    }

    /// Charge a host-to-device PCIe transfer.
    pub fn transfer_h2d(&self, bytes: u64) -> f64 {
        let t = self.pcie.transfer_seconds(bytes);
        self.ledger.lock().record_transfer(t, bytes, true);
        t
    }

    /// Charge a device-to-host PCIe transfer.
    pub fn transfer_d2h(&self, bytes: u64) -> f64 {
        let t = self.pcie.transfer_seconds(bytes);
        self.ledger.lock().record_transfer(t, bytes, false);
        t
    }

    /// Charge host-side (CPU) work that sits on this device's critical path
    /// (e.g. the small SVD of `R` in the Robust PCA loop).
    pub fn host_work(&self, name: &'static str, seconds: f64, flops: f64) {
        self.ledger.lock().record(name, seconds, flops, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::{MatPtr, Matrix};

    /// Trivial kernel: each block scales its own 32-row tile by 2 and charges
    /// one fma per element.
    struct ScaleKernel {
        mat: MatPtr<f32>,
        tile_rows: usize,
        blocks: usize,
    }

    impl Kernel<f32> for ScaleKernel {
        fn name(&self) -> &'static str {
            "scale"
        }
        fn config(&self) -> LaunchConfig {
            LaunchConfig {
                blocks: self.blocks,
                threads_per_block: 64,
                shared_mem_bytes: 0,
                regs_per_thread: 8,
            }
        }
        fn run_block(&self, b: usize, ctx: &mut BlockCtx<f32>) {
            let r0 = b * self.tile_rows;
            let cols = self.mat.cols();
            for j in 0..cols {
                for i in 0..self.tile_rows {
                    // SAFETY: blocks own disjoint row tiles.
                    unsafe {
                        let v = self.mat.get(r0 + i, j);
                        self.mat.set(r0 + i, j, 2.0 * v);
                    }
                }
            }
            let elems = (self.tile_rows * cols) as u64;
            ctx.meter.gmem(elems, 4, true);
            ctx.meter.fma(elems);
            ctx.meter.gmem(elems, 4, true);
        }
    }

    #[test]
    fn launch_executes_and_times() {
        let gpu = Gpu::new(DeviceSpec::c2050());
        let mut m = Matrix::from_fn(256, 8, |i, j| (i + j) as f32);
        let orig = m.clone();
        let report = {
            let k = ScaleKernel {
                mat: MatPtr::new(&mut m),
                tile_rows: 32,
                blocks: 8,
            };
            gpu.launch(&k).unwrap()
        };
        // Real math happened.
        for i in 0..256 {
            for j in 0..8 {
                assert_eq!(m[(i, j)], 2.0 * orig[(i, j)]);
            }
        }
        // Costs recorded: 256*8 elements * 2 flops.
        assert_eq!(report.total.flops, 2 * 256 * 8);
        assert!(report.seconds > 0.0);
        assert_eq!(gpu.ledger().calls, 1);
    }

    #[test]
    fn more_blocks_scale_throughput_until_sms_saturate() {
        // Same per-block work; 1 block vs 14 blocks on a 14-SM device should
        // take the same modelled body time (perfect scaling), while 15 blocks
        // start a second wave.
        let gpu = Gpu::new(DeviceSpec::c2050());
        let cfg = |blocks| LaunchConfig {
            blocks,
            threads_per_block: 64,
            shared_mem_bytes: 0,
            regs_per_thread: 8,
        };
        let per_block = BlockCost {
            flops: 1_000_000,
            issue_cycles: 100_000.0,
            gmem_bytes: 0.0,
            smem_words: 0,
            syncs: 0,
        };
        let t1 = gpu.launch_uniform("k", cfg(1), &per_block).unwrap().seconds;
        let t14 = gpu
            .launch_uniform("k", cfg(14), &per_block)
            .unwrap()
            .seconds;
        let t15 = gpu
            .launch_uniform("k", cfg(15), &per_block)
            .unwrap()
            .seconds;
        let t28 = gpu
            .launch_uniform("k", cfg(28), &per_block)
            .unwrap()
            .seconds;
        assert!(
            (t1 - t14).abs() < 1e-12,
            "1 and 14 blocks fill <= one block per SM"
        );
        assert!(t15 > t14, "15th block starts a second wave");
        assert!((t28 - t15).abs() < 1e-12, "waves quantize");
    }

    #[test]
    fn dram_bound_launch_obeys_bandwidth_roofline() {
        let gpu = Gpu::new(DeviceSpec::c2050());
        let per_block = BlockCost {
            flops: 1000,
            issue_cycles: 10.0,
            gmem_bytes: 1.0e6, // 1 MB per block
            smem_words: 0,
            syncs: 0,
        };
        let cfg = LaunchConfig {
            blocks: 144,
            threads_per_block: 64,
            shared_mem_bytes: 0,
            regs_per_thread: 8,
        };
        let r = gpu.launch_uniform("bw", cfg, &per_block).unwrap();
        assert!(!r.compute_bound);
        // 144 MB / 144 GB/s = 1 ms.
        let want = 1.0e-3 + gpu.spec().launch_overhead_us * 1e-6;
        assert!((r.seconds - want).abs() / want < 1e-9, "got {}", r.seconds);
    }

    #[test]
    fn async_launch_runs_numerics_now_and_times_at_sync() {
        let gpu = Gpu::new(DeviceSpec::c2050());
        let mut m = Matrix::from_fn(256, 8, |i, j| (i + j) as f32);
        let orig = m.clone();
        let s = gpu.create_stream();
        {
            let k = ScaleKernel {
                mat: MatPtr::new(&mut m),
                tile_rows: 32,
                blocks: 8,
            };
            gpu.launch_async(s, &k).unwrap();
        }
        // Numerics are done before synchronize.
        for i in 0..256 {
            for j in 0..8 {
                assert_eq!(m[(i, j)], 2.0 * orig[(i, j)]);
            }
        }
        // But no time has been charged yet.
        assert_eq!(gpu.elapsed(), 0.0);
        assert_eq!(gpu.ledger().calls, 0);
        let tl = gpu.synchronize();
        assert_eq!(tl.intervals.len(), 1);
        assert_eq!(tl.intervals[0].stream, s.index());
        assert!((gpu.elapsed() - tl.makespan).abs() < 1e-15);
        let l = gpu.ledger();
        assert_eq!(l.calls, 1);
        assert_eq!(l.intervals.len(), 1);
    }

    #[test]
    fn single_stream_equals_synchronous_time() {
        let per_block = BlockCost {
            flops: 1_000_000,
            issue_cycles: 100_000.0,
            gmem_bytes: 5.0e5,
            smem_words: 0,
            syncs: 0,
        };
        let cfg = LaunchConfig {
            blocks: 28,
            threads_per_block: 64,
            shared_mem_bytes: 0,
            regs_per_thread: 8,
        };
        let costs = vec![per_block; 28];

        let sync = Gpu::new(DeviceSpec::c2050());
        for _ in 0..3 {
            sync.launch_with_costs("k", cfg, &costs).unwrap();
        }

        let streamed = Gpu::new(DeviceSpec::c2050());
        let s = streamed.create_stream();
        for _ in 0..3 {
            streamed
                .launch_with_costs_async(s, "k", cfg, &costs)
                .unwrap();
        }
        let tl = streamed.synchronize();
        assert!(
            (tl.makespan - sync.elapsed()).abs() < 1e-12,
            "one stream must serialize to the synchronous sum: {} vs {}",
            tl.makespan,
            sync.elapsed()
        );
        assert_eq!(streamed.ledger().calls, sync.ledger().calls);
        assert!((streamed.ledger().flops - sync.ledger().flops).abs() < 1.0);
    }

    #[test]
    fn events_serialize_across_streams() {
        let gpu = Gpu::new(DeviceSpec::c2050());
        let per_block = BlockCost {
            flops: 1000,
            issue_cycles: 50_000.0,
            gmem_bytes: 0.0,
            smem_words: 0,
            syncs: 0,
        };
        let cfg = LaunchConfig {
            blocks: 14,
            threads_per_block: 64,
            shared_mem_bytes: 0,
            regs_per_thread: 8,
        };
        let costs = vec![per_block; 14];
        let s0 = gpu.create_stream();
        let s1 = gpu.create_stream();
        gpu.launch_with_costs_async(s0, "producer", cfg, &costs)
            .unwrap();
        let ev = gpu.record_event(s0);
        gpu.wait_event(s1, ev);
        gpu.launch_with_costs_async(s1, "consumer", cfg, &costs)
            .unwrap();
        let tl = gpu.synchronize();
        let p = tl
            .intervals
            .iter()
            .find(|iv| iv.name == "producer")
            .unwrap();
        let c = tl
            .intervals
            .iter()
            .find(|iv| iv.name == "consumer")
            .unwrap();
        assert!(
            c.start >= p.end - 1e-15,
            "event must order consumer after producer"
        );
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn synchronize_panics_on_unrecorded_event_wait() {
        let gpu = Gpu::new(DeviceSpec::c2050());
        let s0 = gpu.create_stream();
        let s1 = gpu.create_stream();
        // Allocate a valid event id on s0's table but never reach it: wait
        // on an event recorded *after* the waiting stream's sync.
        let _ = s0;
        let bogus = {
            // Record-less wait: fabricate by recording on a stream that is
            // never synchronized is impossible through the public API, so
            // exercise the next best thing — wait for an event recorded
            // later in program order on the *same* stream set, then drop it.
            let ev = gpu.record_event(s1);
            gpu.reset(); // forget the record
            ev
        };
        let s = gpu.create_stream();
        gpu.wait_event(s, bogus);
        gpu.synchronize();
    }

    #[test]
    fn faulted_launch_retries_and_matches_fault_free_numerics() {
        let run = |gpu: &Gpu| {
            let mut m = Matrix::from_fn(256, 8, |i, j| (i * 31 + j) as f32 * 0.5);
            for _ in 0..3 {
                let k = ScaleKernel {
                    mat: MatPtr::new(&mut m),
                    tile_rows: 32,
                    blocks: 8,
                };
                gpu.launch(&k).unwrap();
            }
            m
        };
        let clean = Gpu::new(DeviceSpec::c2050());
        let reference = run(&clean);

        let faulty = Gpu::new(DeviceSpec::c2050());
        faulty.set_fault_plan(crate::fault::FaultPlan::at_launches(&[0, 2]));
        let retried = run(&faulty);

        assert_eq!(reference.as_slice(), retried.as_slice(), "bit-identical");
        let l = faulty.ledger();
        assert_eq!(l.faults, 2);
        assert_eq!(l.retries, 2);
        assert_eq!(l.calls, 3, "faulted attempts are not calls");
        assert!(
            faulty.elapsed() > clean.elapsed(),
            "retries cost wall-clock time"
        );
    }

    #[test]
    fn exhausted_retries_surface_device_fault_without_touching_memory() {
        let gpu = Gpu::new(DeviceSpec::c2050());
        // Rate 1.0: every attempt faults, retries can never succeed.
        gpu.set_fault_plan_with_policy(
            crate::fault::FaultPlan::seeded(9, 1.0),
            crate::fault::RetryPolicy {
                max_attempts: 4,
                backoff_us: 1.0,
            },
        );
        let mut m = Matrix::from_fn(64, 4, |i, j| (i + j) as f32);
        let orig = m.clone();
        let err = {
            let k = ScaleKernel {
                mat: MatPtr::new(&mut m),
                tile_rows: 8,
                blocks: 8,
            };
            gpu.launch(&k).unwrap_err()
        };
        assert_eq!(
            err,
            LaunchError::DeviceFault {
                kernel: "scale",
                launch_index: 0,
                attempts: 4,
            }
        );
        assert_eq!(m.as_slice(), orig.as_slice(), "no partial execution");
        assert_eq!(gpu.ledger().calls, 0);
        assert_eq!(gpu.ledger().faults, 4);
    }

    #[test]
    fn fault_plan_survives_reset_with_restarted_numbering() {
        let gpu = Gpu::new(DeviceSpec::c2050());
        gpu.set_fault_plan(crate::fault::FaultPlan::at_launches(&[1]));
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 64,
            shared_mem_bytes: 0,
            regs_per_thread: 8,
        };
        let pb = BlockCost {
            flops: 1,
            issue_cycles: 1.0,
            gmem_bytes: 0.0,
            smem_words: 0,
            syncs: 0,
        };
        gpu.launch_uniform("k", cfg, &pb).unwrap();
        gpu.launch_uniform("k", cfg, &pb).unwrap();
        assert_eq!(gpu.ledger().faults, 1);
        gpu.reset();
        gpu.launch_uniform("k", cfg, &pb).unwrap();
        gpu.launch_uniform("k", cfg, &pb).unwrap();
        assert_eq!(gpu.ledger().faults, 1, "same schedule after reset");
        gpu.clear_fault_plan();
        gpu.reset();
        gpu.launch_uniform("k", cfg, &pb).unwrap();
        gpu.launch_uniform("k", cfg, &pb).unwrap();
        assert_eq!(gpu.ledger().faults, 0);
    }

    #[test]
    fn hung_launch_is_killed_retried_and_charged_as_stall() {
        let gpu = Gpu::new(DeviceSpec::c2050());
        // Explicit hangs are persistent, so use a seeded plan whose retry
        // redraw clears: hang band only, modest rate, generous attempts.
        gpu.set_fault_plan_with_policy(
            crate::fault::FaultPlan::hang_at_launches(&[0]),
            crate::fault::RetryPolicy {
                max_attempts: 3,
                backoff_us: 1.0,
            },
        );
        let mut m = Matrix::from_fn(64, 4, |i, j| (i + j) as f32);
        let err = {
            let k = ScaleKernel {
                mat: MatPtr::new(&mut m),
                tile_rows: 8,
                blocks: 8,
            };
            gpu.launch(&k).unwrap_err()
        };
        // Persistent hang: every attempt killed at the deadline, typed
        // Timeout at exhaustion, memory untouched, stall time charged.
        assert_eq!(
            err,
            LaunchError::Timeout {
                kernel: "scale",
                launch_index: 0,
                deadline_us: DEFAULT_WATCHDOG_US as u64,
            }
        );
        let l = gpu.ledger();
        assert_eq!(l.hangs, 3);
        assert_eq!(l.calls, 0);
        assert!(
            gpu.elapsed() >= 3.0 * DEFAULT_WATCHDOG_US * 1e-6,
            "each hung attempt charges at least the deadline: {}",
            gpu.elapsed()
        );
        assert_eq!(l.per_op["watchdog_stall"].calls, 1);

        // A transient hang (first attempt only via a seeded plan drawn to
        // hang at attempt 0) is absorbed: find such a launch index.
        let probe = crate::fault::FaultPlan::seeded_mix(11, 0.0, 0.0, 0.4);
        let idx = (0..64u64)
            .find(|&i| {
                probe.fault_kind(i, 0) == Some(FaultKind::Hang) && probe.fault_kind(i, 1).is_none()
            })
            .expect("some launch hangs once then clears");
        let gpu2 = Gpu::new(DeviceSpec::c2050());
        gpu2.set_fault_plan(probe);
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 64,
            shared_mem_bytes: 0,
            regs_per_thread: 8,
        };
        let pb = BlockCost {
            flops: 1,
            issue_cycles: 1.0,
            gmem_bytes: 0.0,
            smem_words: 0,
            syncs: 0,
        };
        // Burn launches up to `idx`, absorbing whatever the plan throws.
        for _ in 0..idx {
            let _ = gpu2.launch_uniform("k", cfg, &pb);
        }
        gpu2.launch_uniform("probe", cfg, &pb)
            .expect("transient hang absorbed by watchdog retry");
        assert!(gpu2.ledger().hangs >= 1);
    }

    #[test]
    fn async_hang_stall_serializes_on_the_stream_without_counting_calls() {
        let gpu = Gpu::new(DeviceSpec::c2050());
        let probe = crate::fault::FaultPlan::seeded_mix(11, 0.0, 0.0, 0.4);
        let idx = (0..64u64)
            .find(|&i| {
                probe.fault_kind(i, 0) == Some(FaultKind::Hang) && probe.fault_kind(i, 1).is_none()
            })
            .unwrap();
        gpu.set_fault_plan(probe);
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 64,
            shared_mem_bytes: 0,
            regs_per_thread: 8,
        };
        let pb = BlockCost {
            flops: 1,
            issue_cycles: 1.0,
            gmem_bytes: 0.0,
            smem_words: 0,
            syncs: 0,
        };
        let s = gpu.create_stream();
        let mut enqueued = 0u64;
        for _ in 0..=idx {
            if gpu.launch_with_costs_async(s, "k", cfg, &[pb]).is_ok() {
                enqueued += 1;
            }
        }
        let tl = gpu.synchronize();
        let stalls: Vec<_> = tl
            .intervals
            .iter()
            .filter(|iv| iv.name == crate::stream::WATCHDOG_STALL)
            .collect();
        assert!(!stalls.is_empty(), "hang must appear as a stall interval");
        assert!(stalls
            .iter()
            .all(|iv| iv.duration() >= DEFAULT_WATCHDOG_US * 1e-6));
        let l = gpu.ledger();
        assert_eq!(l.calls, enqueued, "stalls are not kernel calls");
        assert!(l.hangs >= 1);
        assert!(tl.utilization(1) > 0.0);
    }

    /// Kernel with an SDC hook: corrupts one element of its matrix.
    struct SdcProbeKernel {
        mat: MatPtr<f32>,
    }

    impl Kernel<f32> for SdcProbeKernel {
        fn name(&self) -> &'static str {
            "sdc_probe"
        }
        fn config(&self) -> LaunchConfig {
            LaunchConfig {
                blocks: 1,
                threads_per_block: 64,
                shared_mem_bytes: 0,
                regs_per_thread: 8,
            }
        }
        fn run_block(&self, _b: usize, ctx: &mut BlockCtx<f32>) {
            ctx.meter.fma(1);
        }
        fn inject_sdc(&self, r: u64) -> bool {
            let i = (r as usize) % self.mat.rows();
            let j = (r as usize >> 8) % self.mat.cols();
            // SAFETY: called after the grid completes; exclusive access.
            unsafe {
                let v = self.mat.get(i, j);
                self.mat.set(i, j, v + 1.0 + v.abs());
            }
            true
        }
    }

    #[test]
    fn sdc_fault_corrupts_exactly_one_element_deterministically() {
        let run = |plan: Option<crate::fault::FaultPlan>| {
            let gpu = Gpu::new(DeviceSpec::c2050());
            if let Some(p) = plan {
                gpu.set_fault_plan(p);
            }
            let mut m = Matrix::from_fn(32, 4, |i, j| (i * 7 + j) as f32 * 0.25);
            {
                let k = SdcProbeKernel {
                    mat: MatPtr::new(&mut m),
                };
                gpu.launch(&k).unwrap();
            }
            (m, gpu.ledger())
        };
        let (clean, lc) = run(None);
        assert_eq!(lc.sdc_injected, 0);
        let (hit1, l1) = run(Some(crate::fault::FaultPlan::sdc_at_launches(&[0])));
        let (hit2, l2) = run(Some(crate::fault::FaultPlan::sdc_at_launches(&[0])));
        assert_eq!(l1.sdc_injected, 1);
        assert_eq!(l1.calls, 1, "SDC admits the launch");
        assert_eq!(l1.faults, 0);
        let diff: Vec<usize> = clean
            .as_slice()
            .iter()
            .zip(hit1.as_slice())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diff.len(), 1, "exactly one element corrupted");
        assert_eq!(
            hit1.as_slice(),
            hit2.as_slice(),
            "same plan corrupts the same element"
        );
        assert_eq!(l2.sdc_injected, 1);
    }

    #[test]
    fn transfers_and_host_work_advance_the_clock() {
        let gpu = Gpu::new(DeviceSpec::c2050());
        let t0 = gpu.elapsed();
        gpu.transfer_h2d(1 << 20);
        gpu.host_work("svd_r", 5.0e-3, 1.0e6);
        gpu.transfer_d2h(1 << 10);
        assert!(gpu.elapsed() > t0 + 5.0e-3);
        let l = gpu.ledger();
        assert_eq!(l.h2d_bytes, 1 << 20);
        assert_eq!(l.d2h_bytes, 1 << 10);
        assert_eq!(l.transfers, 2);
        gpu.reset();
        assert_eq!(gpu.elapsed(), 0.0);
    }
}
