//! Streams and events: CUDA-style asynchronous launch queues.
//!
//! A [`StreamId`] names an in-order queue of operations on a device. Work
//! submitted to the same stream executes (in the modelled timeline) strictly
//! in submission order; work on different streams may overlap. An
//! [`EventId`] is a marker recorded into one stream that other streams can
//! wait on, expressing cross-stream dependencies — together they form the
//! task DAG that [`crate::timeline`] resolves into modelled wall-clock time.
//!
//! Numerical execution does **not** wait for the timeline: an asynchronous
//! launch runs its kernel arithmetic immediately on the rayon pool (host
//! submission order is always a valid topological order of the DAG, so
//! results are bit-identical to the synchronous path), and only the *timing*
//! of the launch is deferred until [`crate::device::Gpu::synchronize`].

/// Handle to an in-order launch queue on a device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub(crate) usize);

impl StreamId {
    /// The stream's index (dense, starting at 0 per device).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a recorded event (a point in one stream's queue).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventId(pub(crate) u64);

/// Name of the pseudo-op a stream carries for watchdog-killed hung launch
/// attempts. It occupies the stream for the deadline + backoff like a real
/// hang would, but consumes no device resources and is attributed to the
/// ledger as a stall, never as a kernel call.
pub const WATCHDOG_STALL: &str = "watchdog_stall";

/// Timing description of one asynchronously launched kernel, captured at
/// enqueue time. All durations are contention-free ("alone") values; the
/// timeline engine stretches them under contention.
#[derive(Clone, Debug)]
pub(crate) struct QueuedKernel {
    pub name: &'static str,
    pub blocks: usize,
    /// Launch overhead in seconds (driver/queueing latency; overlappable).
    pub overhead: f64,
    /// Issue-port time in seconds if the kernel ran alone.
    pub issue_seconds: f64,
    /// DRAM time in seconds if the kernel ran alone.
    pub dram_seconds: f64,
    /// Fraction of the device's SMs this launch can occupy
    /// (`min(blocks, sms) / sms`); its weight in issue-port contention.
    pub sm_fraction: f64,
    /// Useful flops (for the ledger and trace export).
    pub flops: f64,
    /// DRAM bytes (for the ledger and trace export).
    pub bytes: f64,
}

impl QueuedKernel {
    /// A watchdog stall occupying `seconds` of stream time while consuming
    /// no device resources (pure overhead phase: it overlaps work on other
    /// streams, exactly like the host-side kill + resubmit it models).
    pub(crate) fn stall(seconds: f64) -> Self {
        QueuedKernel {
            name: WATCHDOG_STALL,
            blocks: 0,
            overhead: seconds,
            issue_seconds: 0.0,
            dram_seconds: 0.0,
            sm_fraction: 0.0,
            flops: 0.0,
            bytes: 0.0,
        }
    }
}

/// One entry in a stream's in-order queue.
#[derive(Clone, Debug)]
pub(crate) enum StreamOp {
    /// A kernel launch (numerics already executed; timing pending).
    Kernel(QueuedKernel),
    /// Record an event: fires when all earlier ops in this stream are done.
    Record(EventId),
    /// Block this stream until the named event has fired.
    Wait(EventId),
}

/// Per-device stream state: the queues accumulated since the last
/// synchronize, plus the event-id allocator.
#[derive(Debug, Default)]
pub(crate) struct StreamTable {
    pub queues: Vec<Vec<StreamOp>>,
    pub next_event: u64,
}

impl StreamTable {
    pub fn create_stream(&mut self) -> StreamId {
        self.queues.push(Vec::new());
        StreamId(self.queues.len() - 1)
    }

    pub fn push(&mut self, stream: StreamId, op: StreamOp) {
        let q = self
            .queues
            .get_mut(stream.0)
            .unwrap_or_else(|| panic!("unknown stream {:?} (create_stream first)", stream));
        q.push(op);
    }

    pub fn alloc_event(&mut self) -> EventId {
        let e = EventId(self.next_event);
        self.next_event += 1;
        e
    }

    /// Take all queued work, leaving the streams themselves valid (handles
    /// survive a synchronize; their queues restart empty).
    pub fn drain(&mut self) -> Vec<Vec<StreamOp>> {
        self.queues.iter_mut().map(std::mem::take).collect()
    }
}
