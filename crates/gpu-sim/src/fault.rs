//! Deterministic fault injection: simulated transient launch failures.
//!
//! Real deployments of the paper's kernels see sporadic launch failures —
//! ECC events, driver timeouts, preemption — that a robust library must
//! absorb rather than propagate as garbage. The simulator models them as
//! *admission* faults: a faulted launch is rejected before any block runs,
//! exactly like a CUDA launch error reported at submission. Because the
//! kernel's arithmetic never starts, replaying the launch after a backoff
//! is always safe (several of the CAQR kernels update tiles in place and
//! are not idempotent), and a retried run is bit-identical to a fault-free
//! run — the property `tests/fault_injection.rs` proves end to end.
//!
//! Faults are selected by a [`FaultPlan`]: either an explicit list of launch
//! ordinals (fails the first attempt of those launches only), or a seeded
//! pseudo-random plan in which every `(launch, attempt)` pair faults
//! independently with a fixed probability. Both are pure functions of the
//! plan's inputs, so a given plan produces the same faults on every run.

use std::collections::BTreeSet;

/// Mixes a 64-bit value (splitmix64 finalizer). Good avalanche behaviour,
/// no dependencies, and stable across platforms.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Clone, Debug)]
enum Mode {
    /// Every `(launch, attempt)` pair faults independently with `rate`
    /// probability, derived from `seed` — a transient-fault model.
    Seeded { seed: u64, rate: f64 },
    /// Exactly these launch ordinals fault, on their first attempt only.
    Explicit(BTreeSet<u64>),
}

/// A deterministic schedule of simulated launch faults.
///
/// Install on a device with [`crate::Gpu::set_fault_plan`]; launches are
/// numbered from 0 in admission order (across all streams — the host
/// submits launches serially).
#[derive(Clone, Debug)]
pub struct FaultPlan {
    mode: Mode,
}

impl FaultPlan {
    /// Seeded transient faults: each `(launch_index, attempt)` faults with
    /// probability `rate` (clamped to `[0, 1]`), independently, derived
    /// deterministically from `seed`. Retries of a faulted launch redraw,
    /// so with `rate < 1` a retried launch eventually succeeds.
    pub fn seeded(seed: u64, rate: f64) -> Self {
        FaultPlan {
            mode: Mode::Seeded {
                seed,
                rate: rate.clamp(0.0, 1.0),
            },
        }
    }

    /// Fault exactly the launches with these ordinals (0-based admission
    /// order), on their first attempt only — the retry always succeeds.
    pub fn at_launches(indices: &[u64]) -> Self {
        FaultPlan {
            mode: Mode::Explicit(indices.iter().copied().collect()),
        }
    }

    /// Does attempt `attempt` of launch `launch_index` fault?
    /// Pure: same inputs, same answer, on every platform.
    pub fn should_fault(&self, launch_index: u64, attempt: u32) -> bool {
        match &self.mode {
            Mode::Seeded { seed, rate } => {
                if *rate <= 0.0 {
                    return false;
                }
                let h = splitmix64(*seed ^ splitmix64(launch_index ^ splitmix64(attempt as u64)));
                // Map to [0, 1) with 53 bits of the hash.
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                u < *rate
            }
            Mode::Explicit(set) => attempt == 0 && set.contains(&launch_index),
        }
    }
}

/// How a device retries faulted launches.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per launch (first try included). At least 1.
    pub max_attempts: u32,
    /// Host backoff before the first retry, microseconds; doubles on each
    /// subsequent retry of the same launch.
    pub backoff_us: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_us: 5.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff in seconds charged before retrying after a fault on
    /// `attempt` (0-based): exponential, `backoff_us * 2^attempt`.
    pub fn backoff_seconds(&self, attempt: u32) -> f64 {
        self.backoff_us * 1.0e-6 * (1u64 << attempt.min(20)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_plan_faults_first_attempt_only() {
        let p = FaultPlan::at_launches(&[2, 5]);
        assert!(p.should_fault(2, 0));
        assert!(p.should_fault(5, 0));
        assert!(!p.should_fault(2, 1), "retry of an explicit fault succeeds");
        assert!(!p.should_fault(3, 0));
    }

    #[test]
    fn seeded_plan_is_deterministic_and_rate_bounded() {
        let p = FaultPlan::seeded(42, 0.25);
        let q = FaultPlan::seeded(42, 0.25);
        let mut hits = 0;
        for i in 0..4000u64 {
            let a = p.should_fault(i, 0);
            assert_eq!(a, q.should_fault(i, 0), "same seed, same plan");
            if a {
                hits += 1;
            }
        }
        // 25% +/- generous slack.
        assert!((700..1300).contains(&hits), "hit rate off: {hits}/4000");
        // Different seeds disagree somewhere.
        let r = FaultPlan::seeded(43, 0.25);
        assert!((0..4000u64).any(|i| p.should_fault(i, 0) != r.should_fault(i, 0)));
    }

    #[test]
    fn seeded_retries_redraw() {
        let p = FaultPlan::seeded(7, 0.5);
        // Some launch must fault on attempt 0 and clear on a later attempt.
        let cleared =
            (0..64u64).any(|i| p.should_fault(i, 0) && (1..4).any(|a| !p.should_fault(i, a)));
        assert!(cleared);
    }

    #[test]
    fn zero_rate_never_faults() {
        let p = FaultPlan::seeded(1, 0.0);
        assert!((0..1000u64).all(|i| !p.should_fault(i, 0)));
    }

    #[test]
    fn backoff_doubles() {
        let r = RetryPolicy {
            max_attempts: 4,
            backoff_us: 10.0,
        };
        assert!((r.backoff_seconds(0) - 10.0e-6).abs() < 1e-18);
        assert!((r.backoff_seconds(1) - 20.0e-6).abs() < 1e-18);
        assert!((r.backoff_seconds(2) - 40.0e-6).abs() < 1e-18);
    }
}
