//! Deterministic fault injection: simulated launch failures, silent data
//! corruption, and hangs.
//!
//! Real deployments of the paper's kernels see sporadic faults — ECC
//! events, driver timeouts, preemption — that a robust library must absorb
//! rather than propagate as garbage. The simulator models three kinds:
//!
//! * [`FaultKind::LaunchFail`] — an *admission* fault: the launch is
//!   rejected before any block runs, exactly like a CUDA launch error
//!   reported at submission. Because the kernel's arithmetic never starts,
//!   replaying the launch after a backoff is always safe (several of the
//!   CAQR kernels update tiles in place and are not idempotent), and a
//!   retried run is bit-identical to a fault-free run.
//! * [`FaultKind::Sdc`] — silent data corruption: the launch is admitted
//!   and runs normally, then exactly one output element is perturbed
//!   (see [`crate::Kernel::inject_sdc`]). Nothing fails at the API level;
//!   detection is the caller's job (ABFT checksums in `caqr::recovery`).
//! * [`FaultKind::Hang`] — the launch never completes. The device's
//!   deadline watchdog kills it after the configured deadline and
//!   resubmits under the retry budget; a launch that hangs on its final
//!   attempt surfaces as [`crate::LaunchError::Timeout`] instead of
//!   blocking forever.
//! * [`FaultKind::DeviceLoss`] — the whole device drops off the bus: the
//!   faulted launch is rejected with [`crate::LaunchError::DeviceLost`],
//!   no retry is attempted (a dead device does not come back), and every
//!   subsequent launch on that device fails the same way until
//!   [`crate::Gpu::reset`]. Recovery is the business of a *multi-device*
//!   driver, which replays the lost device's work on a survivor
//!   (`caqr::distributed`); on a single device the loss is terminal.
//!
//! Faults are selected by a [`FaultPlan`]: either an explicit map of launch
//! ordinals to kinds, or a seeded pseudo-random plan in which every
//! `(launch, attempt)` pair draws one uniform variate partitioned into
//! per-kind probability bands. Both are pure functions of the plan's
//! inputs, so a given plan produces the same faults on every run.

use std::collections::BTreeMap;

/// Mixes a 64-bit value (splitmix64 finalizer). Good avalanche behaviour,
/// no dependencies, and stable across platforms.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What goes wrong with a faulted `(launch, attempt)` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Admission failure: the launch is rejected before any block runs.
    LaunchFail,
    /// Silent data corruption: the launch runs, then one output element is
    /// perturbed via [`crate::Kernel::inject_sdc`].
    Sdc,
    /// The launch never completes; the watchdog kills it at the deadline.
    Hang,
    /// The device itself is lost: the launch is rejected with
    /// [`crate::LaunchError::DeviceLost`] and the device stays dead (every
    /// later launch fails too) until [`crate::Gpu::reset`] revives it.
    DeviceLoss,
    /// The *host* thread driving the launch dies: submitting the launch
    /// panics instead of returning. Models a crashed worker / driver
    /// thread rather than a device-side fault; a supervisor that catches
    /// the unwind can respawn the worker and replay the work (the batch
    /// carve-out and worker supervision of `caqr::service`).
    HostPanic,
}

#[derive(Clone, Debug)]
enum Mode {
    /// Every `(launch, attempt)` pair draws one uniform variate from
    /// `seed` and faults `LaunchFail` / `Sdc` / `Hang` / `HostPanic` when
    /// it lands in the corresponding probability band — a transient-fault
    /// model.
    Seeded {
        seed: u64,
        launch: f64,
        sdc: f64,
        hang: f64,
        host_panic: f64,
    },
    /// Exactly these launch ordinals fault with the mapped kind.
    /// `LaunchFail` and `Sdc` fire on the first attempt only (the retry or
    /// replay succeeds); `Hang` is persistent — it fires on *every*
    /// attempt of that ordinal, modelling a deterministic hang that no
    /// in-place resubmission can clear (only a replay, which draws a fresh
    /// ordinal, escapes it).
    Explicit(BTreeMap<u64, FaultKind>),
}

/// A deterministic schedule of simulated launch faults.
///
/// Install on a device with [`crate::Gpu::set_fault_plan`]; launches are
/// numbered from 0 in admission order (across all streams — the host
/// submits launches serially).
#[derive(Clone, Debug)]
pub struct FaultPlan {
    mode: Mode,
}

impl FaultPlan {
    /// Seeded transient launch failures: each `(launch_index, attempt)`
    /// faults with probability `rate` (clamped to `[0, 1]`), independently,
    /// derived deterministically from `seed`. Retries of a faulted launch
    /// redraw, so with `rate < 1` a retried launch eventually succeeds.
    pub fn seeded(seed: u64, rate: f64) -> Self {
        Self::seeded_mix(seed, rate, 0.0, 0.0)
    }

    /// Seeded mixed faults: each `(launch_index, attempt)` draws one
    /// uniform variate and faults `LaunchFail` with probability
    /// `launch_rate`, `Sdc` with `sdc_rate`, `Hang` with `hang_rate`
    /// (each clamped to `[0, 1]`, bands truncated so they sum to at most
    /// 1). The same `(seed, launch, attempt)` always draws the same kind.
    pub fn seeded_mix(seed: u64, launch_rate: f64, sdc_rate: f64, hang_rate: f64) -> Self {
        Self::seeded_service_mix(seed, launch_rate, sdc_rate, hang_rate, 0.0)
    }

    /// [`FaultPlan::seeded_mix`] plus a fourth band for
    /// [`FaultKind::HostPanic`] — the full fault mix the service-tier chaos
    /// soak injects (launch failures, SDC, hangs, and host-thread deaths).
    pub fn seeded_service_mix(
        seed: u64,
        launch_rate: f64,
        sdc_rate: f64,
        hang_rate: f64,
        host_panic_rate: f64,
    ) -> Self {
        FaultPlan {
            mode: Mode::Seeded {
                seed,
                launch: launch_rate.clamp(0.0, 1.0),
                sdc: sdc_rate.clamp(0.0, 1.0),
                hang: hang_rate.clamp(0.0, 1.0),
                host_panic: host_panic_rate.clamp(0.0, 1.0),
            },
        }
    }

    /// Fail admission of exactly the launches with these ordinals (0-based
    /// admission order), on their first attempt only — the retry succeeds.
    pub fn at_launches(indices: &[u64]) -> Self {
        Self::explicit(indices.iter().map(|&i| (i, FaultKind::LaunchFail)))
    }

    /// Silently corrupt one output element of exactly these launches.
    pub fn sdc_at_launches(indices: &[u64]) -> Self {
        Self::explicit(indices.iter().map(|&i| (i, FaultKind::Sdc)))
    }

    /// Hang exactly these launches — persistently, on every attempt, so
    /// only a replay (fresh ordinal) escapes the fault.
    pub fn hang_at_launches(indices: &[u64]) -> Self {
        Self::explicit(indices.iter().map(|&i| (i, FaultKind::Hang)))
    }

    /// Lose the whole device at exactly these launch ordinals: the first of
    /// them to be admitted kills the device, and every launch from then on
    /// (whatever its ordinal) fails with
    /// [`crate::LaunchError::DeviceLost`].
    pub fn device_loss_at_launches(indices: &[u64]) -> Self {
        Self::explicit(indices.iter().map(|&i| (i, FaultKind::DeviceLoss)))
    }

    /// Kill the host thread at exactly these launch ordinals (first attempt
    /// only — the respawned worker's replay draws a fresh attempt).
    pub fn host_panic_at_launches(indices: &[u64]) -> Self {
        Self::explicit(indices.iter().map(|&i| (i, FaultKind::HostPanic)))
    }

    /// Explicit plan mapping launch ordinals to fault kinds.
    pub fn explicit(entries: impl IntoIterator<Item = (u64, FaultKind)>) -> Self {
        FaultPlan {
            mode: Mode::Explicit(entries.into_iter().collect()),
        }
    }

    /// The fault kind (if any) injected on attempt `attempt` of launch
    /// `launch_index`. Pure: same inputs, same answer, on every platform.
    pub fn fault_kind(&self, launch_index: u64, attempt: u32) -> Option<FaultKind> {
        match &self.mode {
            Mode::Seeded {
                seed,
                launch,
                sdc,
                hang,
                host_panic,
            } => {
                if *launch <= 0.0 && *sdc <= 0.0 && *hang <= 0.0 && *host_panic <= 0.0 {
                    return None;
                }
                let h = splitmix64(*seed ^ splitmix64(launch_index ^ splitmix64(attempt as u64)));
                // Map to [0, 1) with 53 bits of the hash, then partition
                // into bands: [0, launch) ∪ [launch, launch+sdc) ∪
                // [launch+sdc, launch+sdc+hang) ∪ [.., ..+host_panic).
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                if u < *launch {
                    Some(FaultKind::LaunchFail)
                } else if u < *launch + *sdc {
                    Some(FaultKind::Sdc)
                } else if u < *launch + *sdc + *hang {
                    Some(FaultKind::Hang)
                } else if u < *launch + *sdc + *hang + *host_panic {
                    Some(FaultKind::HostPanic)
                } else {
                    None
                }
            }
            Mode::Explicit(map) => match map.get(&launch_index) {
                // Persistent: every in-place resubmission hangs again.
                Some(FaultKind::Hang) => Some(FaultKind::Hang),
                // Persistent too — a lost device never answers a retry.
                Some(FaultKind::DeviceLoss) => Some(FaultKind::DeviceLoss),
                Some(kind) if attempt == 0 => Some(*kind),
                _ => None,
            },
        }
    }

    /// Does attempt `attempt` of launch `launch_index` fail admission?
    /// (The launch-failure kind only — SDC and hangs are reported by
    /// [`FaultPlan::fault_kind`].)
    pub fn should_fault(&self, launch_index: u64, attempt: u32) -> bool {
        matches!(
            self.fault_kind(launch_index, attempt),
            Some(FaultKind::LaunchFail)
        )
    }
}

/// Deterministic per-`(launch, attempt)` corruption payload handed to
/// [`crate::Kernel::inject_sdc`]: which output element to perturb is derived
/// from these bits, so a given fault plan corrupts the same element on
/// every run.
pub fn sdc_payload(launch_index: u64, attempt: u32) -> u64 {
    splitmix64(launch_index.wrapping_mul(0xA076_1D64_78BD_642F) ^ ((attempt as u64) << 48))
}

/// How a device retries faulted launches.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per launch (first try included). At least 1.
    pub max_attempts: u32,
    /// Host backoff before the first retry, microseconds; doubles on each
    /// subsequent retry of the same launch.
    pub backoff_us: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_us: 5.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff in seconds charged before retrying after a fault on
    /// `attempt` (0-based): exponential, `backoff_us * 2^attempt`, with
    /// the exponent capped at 20 so the backoff never overflows.
    pub fn backoff_seconds(&self, attempt: u32) -> f64 {
        self.backoff_us * 1.0e-6 * (1u64 << attempt.min(20)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_plan_faults_first_attempt_only() {
        let p = FaultPlan::at_launches(&[2, 5]);
        assert!(p.should_fault(2, 0));
        assert!(p.should_fault(5, 0));
        assert!(!p.should_fault(2, 1), "retry of an explicit fault succeeds");
        assert!(!p.should_fault(3, 0));
    }

    #[test]
    fn seeded_plan_is_deterministic_and_rate_bounded() {
        let p = FaultPlan::seeded(42, 0.25);
        let q = FaultPlan::seeded(42, 0.25);
        let mut hits = 0;
        for i in 0..4000u64 {
            let a = p.should_fault(i, 0);
            assert_eq!(a, q.should_fault(i, 0), "same seed, same plan");
            if a {
                hits += 1;
            }
        }
        // 25% +/- generous slack.
        assert!((700..1300).contains(&hits), "hit rate off: {hits}/4000");
        // Different seeds disagree somewhere.
        let r = FaultPlan::seeded(43, 0.25);
        assert!((0..4000u64).any(|i| p.should_fault(i, 0) != r.should_fault(i, 0)));
    }

    #[test]
    fn seeded_retries_redraw() {
        let p = FaultPlan::seeded(7, 0.5);
        // Some launch must fault on attempt 0 and clear on a later attempt.
        let cleared =
            (0..64u64).any(|i| p.should_fault(i, 0) && (1..4).any(|a| !p.should_fault(i, a)));
        assert!(cleared);
    }

    #[test]
    fn zero_rate_never_faults() {
        let p = FaultPlan::seeded(1, 0.0);
        assert!((0..1000u64).all(|i| !p.should_fault(i, 0)));
    }

    #[test]
    fn seeded_mix_partitions_kinds_deterministically() {
        let p = FaultPlan::seeded_mix(99, 0.1, 0.1, 0.1);
        let q = FaultPlan::seeded_mix(99, 0.1, 0.1, 0.1);
        let (mut launch, mut sdc, mut hang) = (0u32, 0u32, 0u32);
        for i in 0..4000u64 {
            for a in 0..3u32 {
                let k = p.fault_kind(i, a);
                assert_eq!(k, q.fault_kind(i, a), "same seed, same schedule");
                match k {
                    Some(FaultKind::LaunchFail) => launch += 1,
                    Some(FaultKind::Sdc) => sdc += 1,
                    Some(FaultKind::Hang) => hang += 1,
                    // `seeded_mix` requests a zero host-panic band, and
                    // seeded plans never draw device loss.
                    Some(FaultKind::HostPanic | FaultKind::DeviceLoss) | None => {}
                }
            }
        }
        // Each band sees ~10% of 12000 draws, +/- generous slack; the
        // bands are disjoint by construction (one draw per pair).
        for (name, n) in [("launch", launch), ("sdc", sdc), ("hang", hang)] {
            assert!((800..1600).contains(&n), "{name} band off: {n}/12000");
        }
        // The launch-only constructor is the launch band of the mix.
        let lo = FaultPlan::seeded(99, 0.1);
        for i in 0..1000u64 {
            assert_eq!(
                lo.should_fault(i, 0),
                matches!(p.fault_kind(i, 0), Some(FaultKind::LaunchFail))
            );
        }
    }

    #[test]
    fn service_mix_adds_a_host_panic_band_without_moving_the_others() {
        let base = FaultPlan::seeded_mix(7, 0.1, 0.1, 0.1);
        let full = FaultPlan::seeded_service_mix(7, 0.1, 0.1, 0.1, 0.1);
        let mut panics = 0u32;
        for i in 0..4000u64 {
            let b = base.fault_kind(i, 0);
            let f = full.fault_kind(i, 0);
            match f {
                Some(FaultKind::HostPanic) => {
                    // The panic band sits after the other three: every
                    // HostPanic draw is a None under the three-band mix.
                    assert_eq!(b, None, "launch {i}");
                    panics += 1;
                }
                other => assert_eq!(other, b, "launch {i}"),
            }
        }
        assert!(
            (200..600).contains(&panics),
            "panic band off: {panics}/4000"
        );
        // Explicit host panics fire on the first attempt only.
        let p = FaultPlan::host_panic_at_launches(&[6]);
        assert_eq!(p.fault_kind(6, 0), Some(FaultKind::HostPanic));
        assert_eq!(p.fault_kind(6, 1), None);
        assert!(
            !p.should_fault(6, 0),
            "a host panic is not an admission retry case"
        );
    }

    #[test]
    fn explicit_hangs_are_persistent_but_sdc_is_not() {
        let p = FaultPlan::hang_at_launches(&[4]);
        for a in 0..8u32 {
            assert_eq!(p.fault_kind(4, a), Some(FaultKind::Hang));
        }
        assert_eq!(p.fault_kind(5, 0), None);
        let s = FaultPlan::sdc_at_launches(&[4]);
        assert_eq!(s.fault_kind(4, 0), Some(FaultKind::Sdc));
        assert_eq!(s.fault_kind(4, 1), None);
        assert!(!s.should_fault(4, 0), "SDC admits the launch");
    }

    #[test]
    fn explicit_device_loss_is_persistent() {
        let p = FaultPlan::device_loss_at_launches(&[3]);
        for a in 0..8u32 {
            assert_eq!(p.fault_kind(3, a), Some(FaultKind::DeviceLoss));
        }
        assert_eq!(p.fault_kind(2, 0), None);
        assert!(!p.should_fault(3, 0), "loss is not an admission retry case");
    }

    #[test]
    fn sdc_payload_is_stable_and_spread() {
        assert_eq!(sdc_payload(3, 1), sdc_payload(3, 1));
        assert_ne!(sdc_payload(3, 1), sdc_payload(3, 2));
        assert_ne!(sdc_payload(3, 1), sdc_payload(4, 1));
    }

    #[test]
    fn backoff_doubles() {
        let r = RetryPolicy {
            max_attempts: 4,
            backoff_us: 10.0,
        };
        assert!((r.backoff_seconds(0) - 10.0e-6).abs() < 1e-18);
        assert!((r.backoff_seconds(1) - 20.0e-6).abs() < 1e-18);
        assert!((r.backoff_seconds(2) - 40.0e-6).abs() < 1e-18);
    }
}
