//! # caqr-repro — reproduction of "Communication-Avoiding QR Decomposition
//! # for GPUs" (Anderson, Ballard, Demmel, Keutzer; IPPS 2011)
//!
//! This meta-crate re-exports the workspace:
//!
//! * [`dense`] — BLAS/LAPACK-style substrate built from scratch,
//! * [`gpu_sim`] — the GPU execution-model simulator (the hardware
//!   substitution; see `DESIGN.md`),
//! * [`caqr`] — TSQR/CAQR, the paper's contribution,
//! * [`baselines`] — MAGMA/CULA/MKL/BLAS2-GPU comparison models,
//! * [`rpca`] — Robust PCA video background subtraction (Section VI).
//!
//! See `examples/` for runnable walkthroughs and `crates/bench/src/bin/`
//! for the harnesses that regenerate every table and figure.

pub use baselines;
pub use caqr;
pub use dense;
pub use gpu_sim;
pub use rpca;
