//! Offline stand-in for the `criterion` crate.
//!
//! Mirrors the `Criterion` / `BenchmarkGroup` / `Bencher` API surface the
//! workspace's benches use, backed by a plain wall-clock runner: each bench
//! closure is warmed up once, then timed `sample_size` times, and the
//! mean / min / max are printed. There is no statistical analysis, HTML
//! report, or baseline comparison — `cargo bench` just runs and prints.

use std::time::{Duration, Instant};

/// Top-level bench context, handed to each `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
        }
    }
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a bench name: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The display name used in the report line.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        run_bench(&label, self.sample_size, |b| f(b));
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Passed to bench closures; `iter` times the supplied routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` once per sample after a single warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        sample_size,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<44} (no samples — closure never called iter)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().expect("nonempty");
    let max = b.samples.iter().max().expect("nonempty");
    println!(
        "{label:<44} mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
        mean,
        min,
        max,
        b.samples.len()
    );
}

/// Re-export for bench files that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect bench functions into a runner, as upstream criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // One warm-up plus three timed samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 42).into_id(), "f/42");
        assert_eq!(BenchmarkId::from_parameter("8192x64").into_id(), "8192x64");
    }

    #[test]
    fn group_macro_compiles() {
        fn target(c: &mut Criterion) {
            let mut g = c.benchmark_group("m");
            g.sample_size(1);
            g.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, &x| {
                b.iter(|| x + 1);
            });
            g.finish();
        }
        criterion_group!(runner, target);
        runner();
    }
}
