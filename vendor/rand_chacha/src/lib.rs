//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 keystream generator (RFC 7539 quarter-round
//! schedule, 8 double-rounds) behind the vendored `rand` traits. Output is
//! deterministic per seed but not bit-compatible with upstream
//! `rand_chacha` (the workspace only relies on determinism).

use rand::{RngCore, SeedableRng};

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha stream cipher RNG with 8 double-rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    nonce: [u32; 2],
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.nonce[0];
        state[15] = self.nonce[1];

        let initial = state;
        for _ in 0..4 {
            // Two double-rounds per iteration: 8 total for ChaCha8.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(initial) {
            *s = s.wrapping_add(i);
        }
        self.buf = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            nonce: [0, 0],
            buf: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn counter_advances_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second, "consecutive blocks must differ");
    }

    #[test]
    fn bits_look_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // Expect ~32000 ones out of 64000 bits; allow generous slack.
        assert!((30_000..34_000).contains(&ones), "ones = {ones}");
    }
}
