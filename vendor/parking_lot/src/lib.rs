//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` returns a guard directly (a poisoned std lock is recovered
//! rather than propagated, matching parking_lot's behavior of not having
//! poisoning at all).

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn into_inner_returns_value() {
        let m = Mutex::new(vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
