//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! `x in strategy` parameters over numeric ranges and
//! [`collection::vec`], and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros. Cases are generated from an RNG seeded by the
//! test name, so runs are deterministic; there is no shrinking — a failing
//! case panics with the inputs that produced it.

/// Deterministic RNG used to generate test cases (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name so every run of a given test sees the same
    /// case sequence.
    pub fn for_test(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, span)`; `span` must be nonzero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % span
    }
}

/// Test-runner configuration (`ProptestConfig::with_cases(n)`).
pub mod test_runner {
    /// How many accepted cases each property must pass.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` accepted cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — generate a replacement case.
        Reject,
        /// `prop_assert!`-family failure — the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure with a message.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategies compose by reference.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * (rng.unit_f64() as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (hi - lo) * (rng.unit_f64() as $t)
                }
            }
        )*};
    }

    float_range_strategy!(f64, f32);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i64, i32, i16, i8, isize);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing a `Vec` whose elements come from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate a `Vec` with lengths drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Each `fn name(x in strategy, ..) { body }` becomes
/// a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(64).saturating_add(1024),
                    "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                    stringify!($name), accepted, config.cases,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let __case = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                match __outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed: {}\n  inputs: {}",
                            stringify!($name), msg, __case,
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!(@cfg($cfg) $($rest)*);
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert two values are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r,
        );
    }};
}

/// Assert two values are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($lhs),
            stringify!($rhs),
            l,
        );
    }};
}

/// Reject the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    fn vec_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
        collection::vec(-1.0f64..1.0, n..=n)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_respect_bounds(n in 3usize..40, x in -2.0f64..2.0, s in 0u64..10) {
            prop_assert!((3..40).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!(s < 10, "s = {}", s);
        }

        fn vectors_have_requested_length(v in vec_strategy(24)) {
            prop_assert_eq!(v.len(), 24);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        fn assume_rejects_without_failing(a in 0usize..100, b in 0usize..100) {
            prop_assume!(a >= b);
            prop_assert!(a >= b);
        }

        fn sized_vec_in_bounds(v in collection::vec(1u64..10_000, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| (1..10_000).contains(&x)));
        }

        #[should_panic(expected = "proptest")]
        fn failing_property_panics(n in 0usize..10) {
            prop_assert!(n > 100, "n = {}", n);
        }
    }
}
