//! Offline stand-in for the `rayon` crate.
//!
//! The build environment for this repository has no network access, so the
//! real rayon cannot be fetched. This vendored replacement implements the
//! small slice of the rayon API the workspace uses — `into_par_iter()` /
//! `par_iter()` with `for_each`, `map`, `map_init` and `collect` — with
//! *real* parallelism on `std::thread::scope`. Work is split into one
//! contiguous chunk per available core; `map`/`map_init` preserve input
//! order in their collected output, and panics in worker closures propagate
//! to the caller exactly like rayon's do.
//!
//! Semantics intentionally mirror rayon where the workspace depends on
//! them:
//! * closures must be `Sync` (shared by reference across workers),
//! * items must be `Send`,
//! * `map_init` creates one scratch value per worker chunk and reuses it
//!   for every item in the chunk.

use std::panic::resume_unwind;
use std::thread;

/// The number of worker threads used for parallel drains.
fn threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The number of threads in the (implicit) global pool, mirroring rayon's
/// `current_num_threads` so callers can size task grids.
pub fn current_num_threads() -> usize {
    threads()
}

/// Run `f` over `items`, one contiguous chunk per worker, preserving input
/// order in the returned vector. The scratch value from `init` is created
/// once per chunk and threaded through `f` like rayon's `map_init`.
fn drive<T, S, R, I, F>(items: Vec<T>, init: I, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let n = items.len();
    let workers = threads().min(n.max(1));
    if n == 0 {
        return Vec::new();
    }
    if workers <= 1 {
        let mut scratch = init();
        return items.into_iter().map(|t| f(&mut scratch, t)).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items;
    while !items.is_empty() {
        let tail = items.split_off(items.len().saturating_sub(chunk).min(items.len()));
        chunks.push(tail);
    }
    chunks.reverse(); // split_off peeled from the back; restore input order
    let init = &init;
    let f = &f;
    let mut out: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|ch| {
                scope.spawn(move || {
                    let mut scratch = init();
                    ch.into_iter()
                        .map(|t| f(&mut scratch, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(v) => out.push(v),
                Err(e) => resume_unwind(e),
            }
        }
    });
    out.into_iter().flatten().collect()
}

/// A materialized parallel iterator: the items to drain in parallel.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Consume every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        drive(self.items, || (), |_, t| f(t));
    }

    /// Map every item in parallel (eagerly), preserving order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: drive(self.items, || (), |_, t| f(t)),
        }
    }

    /// Rayon's `map_init`: one scratch value per worker, reused across its
    /// chunk of items.
    pub fn map_init<S, R, I, F>(self, init: I, f: F) -> ParIter<R>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
    {
        ParIter {
            items: drive(self.items, init, f),
        }
    }

    /// Collect the (already computed) results.
    pub fn collect<C: FromParallelIterator<T>>(self) -> C {
        C::from_ordered(self.items)
    }
}

/// Conversion target of [`ParIter::collect`].
pub trait FromParallelIterator<T> {
    /// Build the collection from items in input order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

/// By-value conversion into a parallel iterator (`0..n`, `Vec<T>`, ...).
pub trait IntoParallelIterator {
    /// Item type drained in parallel.
    type Item: Send;
    /// Materialize the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// By-reference parallel iteration over slices (and, via deref, `Vec`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Materialize a parallel iterator of references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Everything a `use rayon::prelude::*` caller expects in scope.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 2);
        }
    }

    #[test]
    fn for_each_visits_every_item_once() {
        let sum = AtomicU64::new(0);
        (1..=100u64).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn map_init_reuses_scratch_within_chunk() {
        let counts: Vec<u64> = (0..64usize)
            .into_par_iter()
            .map_init(
                || 0u64,
                |seen, _| {
                    *seen += 1;
                    *seen
                },
            )
            .collect();
        // Each chunk counts up from 1; totals across chunks cover all items.
        let total: u64 = counts.iter().filter(|&&c| c == 1).count() as u64;
        assert!(total >= 1, "at least one chunk started counting");
        assert_eq!(counts.len(), 64);
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        assert_eq!(data.len(), 4); // still owned
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn panics_propagate() {
        (0..8u64).into_par_iter().for_each(|i| {
            if i == 3 {
                panic!("worker boom");
            }
        });
    }
}
