//! Offline stand-in for the `rand` crate.
//!
//! Provides the trait surface the workspace uses — [`RngCore`], [`Rng`],
//! [`SeedableRng`] and `distributions::{Distribution, Uniform}` — with the
//! same shapes as rand 0.8. Generators vendored alongside (`rand_chacha`)
//! implement [`RngCore`]; everything downstream is deterministic given a
//! seed, which is all the workspace requires (generated streams are not
//! bit-compatible with upstream rand, and no test depends on that).

/// The core of every random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience extension trait (auto-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a 64-bit seed, expanded through SplitMix64 (deterministic,
    /// well mixed — the same construction upstream rand uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Value distributions over an [`RngCore`].
pub mod distributions {
    use crate::{Rng, RngCore};

    /// A type that can produce values of `T` from random bits.
    pub trait Distribution<T> {
        /// Sample one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Types a [`Uniform`] distribution can produce (mirrors upstream's
    /// `SampleUniform` dispatch so `Uniform::new` stays generic).
    pub trait SampleUniform: Copy + PartialOrd {
        /// Map a unit sample in `[0, 1)` onto `[low, high)`.
        fn from_unit(low: Self, high: Self, unit: f64) -> Self;
    }

    impl SampleUniform for f64 {
        fn from_unit(low: f64, high: f64, unit: f64) -> f64 {
            low + (high - low) * unit
        }
    }

    impl SampleUniform for f32 {
        fn from_unit(low: f32, high: f32, unit: f64) -> f32 {
            low + (high - low) * (unit as f32)
        }
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<X: SampleUniform> {
        low: X,
        high: X,
    }

    impl<X: SampleUniform> Uniform<X> {
        /// Uniform over `[low, high)`; requires `low < high`.
        pub fn new(low: X, high: X) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Uniform { low, high }
        }
    }

    impl<X: SampleUniform> Distribution<X> for Uniform<X> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> X {
            X::from_unit(self.low, self.high, rng.gen_unit_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weyl sequence through a mixer: adequate for the range tests.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = Counter(42);
        let d = Uniform::new(-1.0f64, 1.0);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((-1.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn uniform_covers_the_range() {
        let mut rng = Counter(7);
        let d = Uniform::new(0.0f64, 1.0);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            lo |= x < 0.25;
            hi |= x > 0.75;
        }
        assert!(lo && hi, "samples should spread across the interval");
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn uniform_rejects_inverted_bounds() {
        let _ = Uniform::new(1.0f64, -1.0);
    }
}
